package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xrtree/internal/xmldoc"
)

// TestPageSizeSweep exercises every structural code path (multi-page stab
// lists, deep trees, chain splits) by repeating the mixed-operation
// workload across page sizes.
func TestPageSizeSweep(t *testing.T) {
	for _, pageSize := range []int{256, 512, 1024, 4096} {
		pageSize := pageSize
		t.Run(sizeName(pageSize), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(pageSize)))
			es := genNested(rng, 700, 16)
			pool := newPool(t, pageSize, 256)
			tr, err := New(pool, 1, Options{})
			if err != nil {
				t.Fatal(err)
			}
			perm := rng.Perm(len(es))
			for _, pi := range perm {
				if err := tr.Insert(es[pi]); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after inserts: %v", err)
			}
			// Delete half, check, reinsert, check.
			for _, pi := range perm[:len(perm)/2] {
				if err := tr.Delete(es[pi].Start); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after deletes: %v", err)
			}
			for _, pi := range perm[:len(perm)/2] {
				if err := tr.Insert(es[pi]); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after reinserts: %v", err)
			}
			if pool.PinnedCount() != 0 {
				t.Errorf("leaked pins: %d", pool.PinnedCount())
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 256:
		return "256B"
	case 512:
		return "512B"
	case 1024:
		return "1KiB"
	default:
		return "4KiB"
	}
}

// TestQuickRandomTrees is a property test: for any seed, a tree built from
// a random strictly nested document satisfies all invariants and answers
// FindAncestors/FindDescendants like the brute-force oracle.
func TestQuickRandomTrees(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		es := genNested(rng, 150+rng.Intn(250), 2+rng.Intn(16))
		pool := newPool(t, 256, 128)
		tr, err := New(pool, 1, Options{})
		if err != nil {
			return false
		}
		for _, e := range es {
			if err := tr.Insert(e); err != nil {
				return false
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		o := newOracle()
		for _, e := range es {
			o.insert(e)
		}
		maxPos := es[len(es)-1].End + 3
		for i := 0; i < 40; i++ {
			sd := uint32(rng.Intn(int(maxPos)) + 1)
			got, err := tr.FindAncestors(sd, 0, nil)
			if err != nil {
				return false
			}
			want := o.ancestors(sd, 0)
			if len(got) != len(want) {
				t.Logf("seed %d: FindAncestors(%d) = %d, want %d", seed, sd, len(got), len(want))
				return false
			}
			e := es[rng.Intn(len(es))]
			gd, err := tr.FindDescendants(e.Start, e.End, nil)
			if err != nil {
				return false
			}
			if len(gd) != len(o.descendants(e.Start, e.End)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestDeepNestingStabChains forces multi-page stab lists: one chain of
// elements all stabbed by the middle keys.
func TestDeepNestingStabChains(t *testing.T) {
	// 400 concentric regions: (1, 2000), (2, 1999), ... all stab position
	// 1000; tiny pages force chains across many stab pages.
	var es []xmldoc.Element
	for i := 0; i < 400; i++ {
		es = append(es, xmldoc.Element{
			DocID: 1, Start: uint32(i + 1), End: uint32(2000 - i), Level: uint16(i + 1),
		})
	}
	pool := newPool(t, 256, 256)
	tr, err := New(pool, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	_, pages := tr.StabStats()
	if pages < 2 {
		t.Errorf("expected multi-page stab chains, got %d pages", pages)
	}
	anc, err := tr.FindAncestors(1000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 400 {
		t.Errorf("FindAncestors(1000) = %d, want 400", len(anc))
	}
	// minStart must cut the result from deep inside the chain.
	anc, err = tr.FindAncestors(1000, 390, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 10 {
		t.Errorf("FindAncestors(1000, 390) = %d, want 10", len(anc))
	}
	// Delete from the outside in — stab entries must re-home or vanish.
	for i := 0; i < 200; i++ {
		if err := tr.Delete(es[i].Start); err != nil {
			t.Fatalf("Delete(%v): %v", es[i], err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
	anc, err = tr.FindAncestors(1000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 200 {
		t.Errorf("after deletes FindAncestors = %d, want 200", len(anc))
	}
}

// TestIteratorPeekStability checks Peek/Next interleavings across page
// boundaries.
func TestIteratorPeekStability(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	es := genNested(rng, 300, 6)
	pool := newPool(t, 256, 128)
	tr := buildTree(t, pool, es, Options{})
	it, err := tr.Scan(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for i := 0; ; i++ {
		p, pok := it.Peek()
		n, nok := it.Next()
		if pok != nok || (pok && p != n) {
			t.Fatalf("element %d: Peek %v,%v vs Next %v,%v", i, p, pok, n, nok)
		}
		if !nok {
			if i != len(es) {
				t.Fatalf("ended after %d, want %d", i, len(es))
			}
			break
		}
	}
	if _, ok := it.Peek(); ok {
		t.Error("Peek after exhaustion returned true")
	}
}

// TestFindDescendantsEdges covers boundary conditions of the range scan.
func TestFindDescendantsEdges(t *testing.T) {
	es := []xmldoc.Element{
		{DocID: 1, Start: 10, End: 100, Level: 1},
		{DocID: 1, Start: 11, End: 20, Level: 2},
		{DocID: 1, Start: 99, End: 99 + 1, Level: 2}, // hugs the end
	}
	pool := newPool(t, 256, 64)
	tr := buildTree(t, pool, es, Options{})
	des, err := tr.FindDescendants(10, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 2 {
		t.Fatalf("descendants = %v", des)
	}
	// Strictness: the boundaries themselves are excluded.
	des, err = tr.FindDescendants(10, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 0 {
		t.Errorf("empty open interval returned %v", des)
	}
	// Range past the last element.
	des, err = tr.FindDescendants(150, 900, nil)
	if err != nil || len(des) != 0 {
		t.Errorf("out-of-range: %v, %v", des, err)
	}
}

// TestEmptyTreeQueries exercises every read operation on an empty tree.
func TestEmptyTreeQueries(t *testing.T) {
	pool := newPool(t, 256, 64)
	tr, err := New(pool, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if anc, err := tr.FindAncestors(5, 0, nil); err != nil || len(anc) != 0 {
		t.Errorf("FindAncestors on empty: %v, %v", anc, err)
	}
	if des, err := tr.FindDescendants(1, 100, nil); err != nil || len(des) != 0 {
		t.Errorf("FindDescendants on empty: %v, %v", des, err)
	}
	it, err := tr.Scan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Error("Next on empty tree returned true")
	}
	it.Close()
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("empty tree invariants: %v", err)
	}
	if _, _, err := tr.FindParent(5, 3, nil); err != nil {
		t.Errorf("FindParent on empty: %v", err)
	}
}
