package core

// B-link protocol oracles, meant for -race runs: scans that cross leaves
// while those leaves split must see every committed element exactly once,
// and a full insert/delete/query mix must leave a tree that passes the
// exhaustive Definition-4 checker once writers quiesce. The debug build
// (xrtreedebug) additionally runs the pin ledger and the sampled
// post-mutation checker inside every write these tests issue.

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"xrtree/internal/metrics"
	"xrtree/internal/xmldoc"
)

// TestScanExactlyOnceDuringSplits pins down the central B-link reader
// guarantee: a leaf-chain scan concurrent with splits sees each element
// that existed before the scan started exactly once, in order. A split
// only moves entries right into a freshly linked page, and the iterator
// works on private page copies, so a scan that copied the pre-split page
// already holds both halves and one that copied the post-split page picks
// the second half up through the right link — either way, exactly once.
// The writer inserts into the middle of the scanned range so splits land
// on pages scans are actively crossing.
func TestScanExactlyOnceDuringSplits(t *testing.T) {
	pool := newPool(t, 1024, 256)
	tr, err := New(pool, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Static flat siblings at starts 10, 20, 30, ...; the writer fills the
	// odd multiples of 5 between them.
	const nStatic = 1200
	static := make([]xmldoc.Element, nStatic)
	for i := range static {
		s := uint32(10 + 10*i)
		static[i] = xmldoc.Element{DocID: 1, Start: s, End: s + 2, Level: 1}
	}
	if err := tr.BulkLoad(static, 0.9); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var writerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nStatic; i++ {
			s := uint32(15 + 10*i)
			if err := tr.Insert(xmldoc.Element{DocID: 1, Start: s, End: s + 2, Level: 1}); err != nil {
				writerErr = err
				return
			}
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				var c metrics.Counters
				it, err := tr.Scan(&c)
				if err != nil {
					t.Errorf("Scan: %v", err)
					return
				}
				seen := 0
				prev := uint32(0)
				for {
					e, ok := it.Next()
					if !ok {
						break
					}
					if e.Start <= prev && seen > 0 {
						t.Errorf("scan out of order: %d after %d", e.Start, prev)
						it.Close()
						return
					}
					if e.Start%10 == 0 {
						// Static element: count it; the exactly-once check
						// is the ordered count below.
						if e.Start != uint32(10+10*seen) {
							t.Errorf("scan skipped or repeated a static element: saw %d at static index %d", e.Start, seen)
							it.Close()
							return
						}
						seen++
					}
					prev = e.Start
				}
				if err := it.Close(); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if seen != nStatic {
					t.Errorf("scan saw %d static elements, want exactly %d", seen, nStatic)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInsertDeleteQuery mixes structural deletes into the write
// stream. Merges recycle pages, so a racing reader may surface ErrCorrupt
// (the documented detect-don't-block hazard); readers here retry on it and
// must see exact results for the static region on every clean attempt.
// After the writers quiesce the tree must pass the full checker and the
// whole mutable region must read back exactly.
func TestConcurrentInsertDeleteQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	static := genNested(rng, 900, 10)
	pool := newPool(t, 1024, 512)
	tr, err := New(pool, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(static, 0.7); err != nil {
		t.Fatal(err)
	}
	o := newOracle()
	for _, e := range static {
		o.insert(e)
	}
	maxPos := static[len(static)-1].End + 2

	// Two writers over disjoint private key ranges above the static region:
	// each churns its range with inserts and deletes, forcing splits and
	// merges while readers probe the static region.
	var wg sync.WaitGroup
	writerErrs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := maxPos + 10 + uint32(w)*100000
			r := rand.New(rand.NewSource(int64(w) + 7))
			live := make([]uint32, 0, 512)
			for i := 0; i < 1200; i++ {
				if len(live) > 0 && r.Intn(3) == 0 {
					j := r.Intn(len(live))
					s := live[j]
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					if err := tr.Delete(s); err != nil {
						writerErrs[w] = err
						return
					}
					continue
				}
				s := base + uint32(i)*3
				if err := tr.Insert(xmldoc.Element{DocID: 1, Start: s, End: s + 1, Level: 1}); err != nil {
					writerErrs[w] = err
					return
				}
				live = append(live, s)
			}
			// Drain: delete everything this writer still owns, exercising
			// merges all the way back down.
			for _, s := range live {
				if err := tr.Delete(s); err != nil {
					writerErrs[w] = err
					return
				}
			}
		}(w)
	}

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g) + 31))
			for i := 0; i < 200; i++ {
				var c metrics.Counters
				//xrvet:bounded retries are capped at 20 per operation
				for attempt := 0; ; attempt++ {
					var err error
					switch i % 3 {
					case 0:
						sd := uint32(r.Intn(int(maxPos)-2) + 2)
						var got []xmldoc.Element
						got, err = tr.FindAncestors(sd, 0, &c)
						if err == nil && len(got) != len(o.ancestors(sd, 0)) {
							t.Errorf("FindAncestors(%d) wrong size during churn", sd)
							return
						}
					case 1:
						e := static[r.Intn(len(static))]
						var got xmldoc.Element
						got, err = tr.Lookup(e.Start, &c)
						if err == nil && got.End != e.End {
							t.Errorf("Lookup(%d) = %v, want %v", e.Start, got, e)
							return
						}
					case 2:
						a := static[r.Intn(len(static))]
						var got []xmldoc.Element
						got, err = tr.FindDescendants(a.Start, a.End, &c)
						if err == nil && len(got) != len(o.descendants(a.Start, a.End)) {
							t.Errorf("FindDescendants(%d,%d) wrong size during churn", a.Start, a.End)
							return
						}
					}
					if err == nil {
						break
					}
					if !errors.Is(err, ErrCorrupt) || attempt >= 20 {
						t.Errorf("reader op %d: %v (attempt %d)", i%3, err, attempt)
						return
					}
					// A merge recycled a page under the probe: retry.
				}
			}
		}(g)
	}
	wg.Wait()
	for w, err := range writerErrs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Post-quiesce exactness: only the static elements remain.
	var c metrics.Counters
	it, err := tr.Scan(&c)
	if err != nil {
		t.Fatal(err)
	}
	want := o.sorted()
	for _, w := range want {
		e, ok := it.Next()
		if !ok || e.Start != w.Start || e.End != w.End {
			t.Fatalf("post-quiesce scan: got (%v,%v), want %v", e, ok, w)
		}
	}
	if e, ok := it.Next(); ok {
		t.Fatalf("post-quiesce scan: unexpected trailing element %v", e)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}
