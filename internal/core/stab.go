package core

// This file implements the stab-list chain primitives of §3.3 and §4.3:
// inserting an element into a node's stab list (cost C_SI), deleting one
// (cost C_SD), locating a primary stab list through the directory pointers
// (1–2 page accesses, Figure 4), extracting the elements stabbed by a key
// (the StabSet' of Figure 5(b)), and splitting/merging whole chains during
// node splits and merges (Figure 5(a)).
//
// A node's stab list is a doubly linked chain of stab pages whose entries
// are sorted by (primary key, start) across the whole chain. The run of
// entries with key == k is PSL(k), stored outermost-first; by strict
// nesting the elements stabbed by any probe position form a prefix of a
// PSL, which is what makes Algorithm 5 stop early.

import (
	"fmt"

	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// stabLoc addresses one entry in a stab chain.
type stabLoc struct {
	page pagefile.PageID
	idx  int
}

// fetchStab pins a stab page and validates its type.
func (t *Tree) fetchStab(id pagefile.PageID) ([]byte, error) {
	return t.fetchStabTraced(id, nil)
}

// fetchStabTraced is fetchStab with per-call read attribution: the probe
// path (scanPSL) passes the requesting operation's tracer so stab-page
// misses land on its span rather than the store-global tracer.
func (t *Tree) fetchStabTraced(id pagefile.PageID, tr obs.Tracer) ([]byte, error) {
	// Held fetch: mutations rewrite stab pages in place, and any page a
	// transaction can dirty must be in its held set or its after-image
	// never reaches the log. Queries run with t.tx == nil (plain fetch).
	data, err := t.pool.FetchHeldTraced(t.tx, id, tr)
	if err != nil {
		return nil, err
	}
	if data[0] != stabType {
		t.unpin(id, false)
		return nil, fmt.Errorf("%w: page %d is not a stab page", ErrCorrupt, id)
	}
	return data, nil
}

// fetchStabRead is the reader-side twin of fetchStab: a plain pool fetch
// that never consults t.tx (which belongs to a possibly concurrent
// writer). Callers must hold the owning node's shared page latch, which
// covers the whole stab chain.
func (t *Tree) fetchStabRead(id pagefile.PageID, tr obs.Tracer) ([]byte, error) {
	data, err := t.pool.FetchTraced(id, tr)
	if err != nil {
		return nil, err
	}
	if data[0] != stabType {
		t.pool.Unpin(id, false)
		return nil, fmt.Errorf("%w: page %d is not a stab page", ErrCorrupt, id)
	}
	return data, nil
}

// stabInsertElement inserts e into the stab list of the pinned internal
// node, keyed by its primary stabbing key. The caller must guarantee that
// at least one key of the node stabs e. Reports whether the node page was
// modified (always true) via its error-free return.
func (t *Tree) stabInsertElement(node []byte, e xmldoc.Element) error {
	j := primaryKeyIndex(node, e.Start, e.End)
	if j < 0 {
		return fmt.Errorf("%w: stabInsertElement: no key stabs %v", ErrCorrupt, e)
	}
	kv := intKey(node, j)
	se := stabEntry{key: kv, start: e.Start, end: e.End, ref: e.Ref, level: e.Level}

	loc, err := t.findStabInsertPos(node, j, se)
	if err != nil {
		return err
	}
	if err := t.insertAt(node, loc, se); err != nil {
		return err
	}
	// Update the directory entry for key j if e is the new PSL head.
	ps := keyPS(node, j)
	if ps == 0 || e.Start < ps {
		setKeyPSPE(node, j, e.Start, e.End)
		// The head location may have been adjusted by a page split inside
		// insertAt; recompute it cheaply: insertAt returns nothing, so we
		// locate the head via the chain. The head is the entry we just
		// inserted, whose page insertAt recorded in t.lastInsertPage.
		setKeyPSLPage(node, j, t.lastInsertPage)
	}
	t.stabCount.Add(1)
	return nil
}

// findStabInsertPos returns the location at which a new entry for key index
// j must be inserted to keep the chain sorted by (key, start).
//
// With a non-empty PSL(j) the directory points at its head page directly;
// otherwise the head of the next non-empty PSL (or the chain tail) bounds
// the position — the same ≤2-page guarantee the paper's ps directory gives.
func (t *Tree) findStabInsertPos(node []byte, j int, se stabEntry) (stabLoc, error) {
	m := intCount(node)
	if p := keyPSLPage(node, j); p != pagefile.InvalidPage {
		return t.scanForward(p, se)
	}
	// PSL(j) empty: insert immediately before the head of the next
	// non-empty PSL.
	for nj := j + 1; nj < m; nj++ {
		if p := keyPSLPage(node, nj); p != pagefile.InvalidPage {
			nk := intKey(node, nj)
			data, err := t.fetchStab(p)
			if err != nil {
				return stabLoc{}, err
			}
			n := stabCount(data)
			for i := 0; i < n; i++ {
				en := stabEntryAt(data, i)
				if en.key == nk {
					if err := t.unpin(p, false); err != nil {
						return stabLoc{}, err
					}
					return stabLoc{page: p, idx: i}, nil
				}
			}
			t.unpin(p, false)
			return stabLoc{}, fmt.Errorf("%w: PSL head for key %d not on page %d", ErrCorrupt, nk, p)
		}
	}
	// No later PSL: append at the chain tail.
	tail := stabTail(node)
	if tail == pagefile.InvalidPage {
		return stabLoc{page: pagefile.InvalidPage, idx: 0}, nil // empty chain
	}
	data, err := t.fetchStab(tail)
	if err != nil {
		return stabLoc{}, err
	}
	n := stabCount(data)
	if err := t.unpin(tail, false); err != nil {
		return stabLoc{}, err
	}
	return stabLoc{page: tail, idx: n}, nil
}

// scanForward walks from page p to find the sorted position for se. The
// scan normally stays within 1–2 pages because p is the head page of
// se.key's PSL.
func (t *Tree) scanForward(p pagefile.PageID, se stabEntry) (stabLoc, error) {
	for {
		data, err := t.fetchStab(p)
		if err != nil {
			return stabLoc{}, err
		}
		n := stabCount(data)
		// Find the first entry ≥ (se.key, se.start).
		for i := 0; i < n; i++ {
			en := stabEntryAt(data, i)
			if !stabLess(en.key, en.start, se.key, se.start) {
				if err := t.unpin(p, false); err != nil {
					return stabLoc{}, err
				}
				return stabLoc{page: p, idx: i}, nil
			}
		}
		next := stabNext(data)
		if err := t.unpin(p, false); err != nil {
			return stabLoc{}, err
		}
		if next == pagefile.InvalidPage {
			return stabLoc{page: p, idx: n}, nil
		}
		p = next
	}
}

// insertAt physically inserts se at loc, allocating or splitting stab pages
// as needed and fixing any directory pointers whose PSL head moves. It
// records the page that finally holds se in t.lastInsertPage.
func (t *Tree) insertAt(node []byte, loc stabLoc, se stabEntry) error {
	if loc.page == pagefile.InvalidPage {
		// Empty chain: allocate the first page.
		id, data, err := t.fetchNew()
		if err != nil {
			return err
		}
		initStabPage(data)
		putStabEntry(data, 0, se)
		setStabCount(data, 1)
		if err := t.unpin(id, true); err != nil {
			return err
		}
		setStabHead(node, id)
		setStabTail(node, id)
		t.stabPages.Add(1)
		t.lastInsertPage = id
		return nil
	}

	data, err := t.fetchStab(loc.page)
	if err != nil {
		return err
	}
	n := stabCount(data)
	if n < t.stabCap {
		insertStabEntry(data, loc.idx, n, se)
		t.lastInsertPage = loc.page
		return t.unpin(loc.page, true)
	}

	// Page full: split it, keeping the first half in place.
	newID, newData, err := t.fetchNew()
	if err != nil {
		t.unpin(loc.page, false)
		return err
	}
	initStabPage(newData)
	mid := n / 2
	moved := n - mid
	copy(newData[stabHeader:stabHeader+moved*stabEntrySize],
		data[stabHeader+mid*stabEntrySize:stabHeader+n*stabEntrySize])
	setStabCount(newData, moved)
	setStabCount(data, mid)
	t.stabPages.Add(1)

	// Relink: P -> Q -> oldNext.
	oldNext := stabNext(data)
	setStabNext(newData, oldNext)
	setStabPrev(newData, loc.page)
	setStabNext(data, newID)
	if oldNext != pagefile.InvalidPage {
		nd, err := t.fetchStab(oldNext)
		if err == nil {
			setStabPrev(nd, newID)
			err = t.unpin(oldNext, true)
		}
		if err != nil {
			t.unpin(newID, true)
			t.unpin(loc.page, true)
			return err
		}
	} else {
		setStabTail(node, newID)
	}

	// Fix directory pointers: any key whose value exceeds the last key left
	// in P had its PSL head move to Q (the chain is globally key-sorted, so
	// "key greater than P's new last key" ⟺ "first occurrence now in Q").
	lastP := stabEntryAt(data, mid-1).key
	fixHeads := func(pageData []byte, pageID pagefile.PageID) {
		cnt := stabCount(pageData)
		prev := uint32(0)
		for i := 0; i < cnt; i++ {
			k := stabEntryAt(pageData, i).key
			if k == prev || k <= lastP {
				prev = k
				continue
			}
			prev = k
			if ki := keyIndex(node, k); ki >= 0 {
				setKeyPSLPage(node, ki, pageID)
			}
		}
	}
	fixHeads(newData, newID)

	// Insert into the proper half.
	if loc.idx <= mid {
		// Position falls in P (inserting at index mid belongs to P's end).
		insertStabEntry(data, loc.idx, mid, se)
		t.lastInsertPage = loc.page
		// If se.key > lastP we may have wrongly pointed its head at Q when
		// an equal-key run starts here; recompute for se.key explicitly
		// below via the caller's head update. Heads for other keys are
		// unaffected because se goes to P's tail region only if its key is
		// ≤ the smallest key in Q at that position.
	} else {
		insertStabEntry(newData, loc.idx-mid, moved, se)
		t.lastInsertPage = newID
	}
	if err := t.unpin(newID, true); err != nil {
		t.unpin(loc.page, true)
		return err
	}
	return t.unpin(loc.page, true)
}

// popPSLHead removes and returns the head entry of PSL(j) of the pinned
// node, updating the directory and (ps, pe). PSL(j) must be non-empty.
func (t *Tree) popPSLHead(node []byte, j int) (stabEntry, error) {
	p := keyPSLPage(node, j)
	if p == pagefile.InvalidPage {
		return stabEntry{}, fmt.Errorf("%w: popPSLHead of empty PSL", ErrCorrupt)
	}
	kv := intKey(node, j)
	data, err := t.fetchStab(p)
	if err != nil {
		return stabEntry{}, err
	}
	n := stabCount(data)
	idx := -1
	for i := 0; i < n; i++ {
		if stabEntryAt(data, i).key == kv {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.unpin(p, false)
		return stabEntry{}, fmt.Errorf("%w: PSL head for key %d missing on page %d", ErrCorrupt, kv, p)
	}
	head := stabEntryAt(data, idx)
	succ, err := t.removeAt(node, p, data, idx)
	if err != nil {
		return stabEntry{}, err
	}
	if err := t.refreshHeadFromSucc(node, j, succ); err != nil {
		return stabEntry{}, err
	}
	t.stabCount.Add(-1)
	return head, nil
}

// removeAt deletes the entry at index idx of the pinned-by-us stab page
// (page id p, data already fetched), consuming the pin and unlinking the
// page if it becomes empty. It returns the location of the entry that now
// follows the removed one in the chain (page == InvalidPage when the
// removed entry was the chain's last).
func (t *Tree) removeAt(node []byte, p pagefile.PageID, data []byte, idx int) (stabLoc, error) {
	n := stabCount(data)
	removeStabEntry(data, idx, n)
	if n-1 > 0 {
		succ := stabLoc{page: p, idx: idx}
		if idx >= n-1 {
			succ = stabLoc{page: stabNext(data), idx: 0}
		}
		return succ, t.unpin(p, true)
	}
	// Page empty: unlink and free it.
	prev, next := stabPrev(data), stabNext(data)
	if prev != pagefile.InvalidPage {
		pd, err := t.fetchStab(prev)
		if err != nil {
			t.unpin(p, true)
			return stabLoc{}, err
		}
		setStabNext(pd, next)
		if err := t.unpin(prev, true); err != nil {
			t.unpin(p, true)
			return stabLoc{}, err
		}
	} else {
		setStabHead(node, next)
	}
	if next != pagefile.InvalidPage {
		nd, err := t.fetchStab(next)
		if err != nil {
			t.unpin(p, true)
			return stabLoc{}, err
		}
		setStabPrev(nd, prev)
		if err := t.unpin(next, true); err != nil {
			t.unpin(p, true)
			return stabLoc{}, err
		}
	} else {
		setStabTail(node, prev)
	}
	t.stabPages.Add(-1)
	return stabLoc{page: next, idx: 0}, t.discard(p)
}

// refreshHeadFromSucc updates (ps, pe) and the head pointer of key j after
// its old head entry was removed: the new head, if any, is exactly the
// chain successor of the removed entry (the PSL is a contiguous sorted
// run), so a single page look suffices — matching the C_SD ≤ 2–3 I/O claim
// of §4.3.
func (t *Tree) refreshHeadFromSucc(node []byte, j int, succ stabLoc) error {
	if succ.page == pagefile.InvalidPage {
		t.clearPSL(node, j)
		return nil
	}
	kv := intKey(node, j)
	data, err := t.fetchStab(succ.page)
	if err != nil {
		return err
	}
	if succ.idx >= stabCount(data) {
		// Successor was the first entry of the next page but that page is
		// exhausted too — only possible when succ.idx is 0 on an empty
		// page, which unlink prevents; treat defensively as no successor.
		t.unpin(succ.page, false)
		t.clearPSL(node, j)
		return nil
	}
	en := stabEntryAt(data, succ.idx)
	if en.key == kv {
		setKeyPSPE(node, j, en.start, en.end)
		setKeyPSLPage(node, j, succ.page)
	} else {
		t.clearPSL(node, j)
	}
	return t.unpin(succ.page, false)
}

func (t *Tree) clearPSL(node []byte, j int) {
	setKeyPSPE(node, j, 0, 0)
	setKeyPSLPage(node, j, pagefile.InvalidPage)
}

// stabDeleteElement removes the entry for element (s, e) from the pinned
// node's stab list if present, returning whether it was found.
func (t *Tree) stabDeleteElement(node []byte, s, e uint32) (bool, error) {
	j := primaryKeyIndex(node, s, e)
	if j < 0 {
		return false, nil
	}
	kv := intKey(node, j)
	p := keyPSLPage(node, j)
	if p == pagefile.InvalidPage {
		return false, nil
	}
	// Walk PSL(j) looking for start == s.
	for p != pagefile.InvalidPage {
		data, err := t.fetchStab(p)
		if err != nil {
			return false, err
		}
		n := stabCount(data)
		advance := pagefile.InvalidPage
		for i := 0; i < n; i++ {
			en := stabEntryAt(data, i)
			if en.key > kv || (en.key == kv && en.start > s) {
				// Passed the position: not present.
				return false, t.unpin(p, false)
			}
			if en.key == kv && en.start == s {
				wasHead := keyPS(node, j) == s
				succ, err := t.removeAt(node, p, data, i)
				if err != nil {
					return false, err
				}
				if wasHead {
					if err := t.refreshHeadFromSucc(node, j, succ); err != nil {
						return false, err
					}
				}
				t.stabCount.Add(-1)
				return true, nil
			}
		}
		advance = stabNext(data)
		if err := t.unpin(p, false); err != nil {
			return false, err
		}
		p = advance
	}
	return false, nil
}

// extractPSL removes and returns every entry of PSL(j) of the pinned node,
// in (outermost-first) order.
func (t *Tree) extractPSL(node []byte, j int) ([]stabEntry, error) {
	var out []stabEntry
	for keyPSLPage(node, j) != pagefile.InvalidPage {
		se, err := t.popPSLHead(node, j)
		if err != nil {
			return out, err
		}
		out = append(out, se)
	}
	return out, nil
}

// extractStabbedBy removes and returns every entry of the pinned node's
// stab list that is stabbed by position k. By strict nesting the stabbed
// entries of each PSL form a prefix, and the in-entry (ps, pe) fields prove
// in advance whether a PSL has any match, so PSLs without matches cost no
// page accesses — the StabSet' extraction of Figure 5(b).
func (t *Tree) extractStabbedBy(node []byte, k uint32) ([]stabEntry, error) {
	var out []stabEntry
	m := intCount(node)
	for c := 0; c < m; c++ {
		for {
			ps := keyPS(node, c)
			if ps == 0 || !(ps <= k && k <= keyPE(node, c)) {
				break
			}
			se, err := t.popPSLHead(node, c)
			if err != nil {
				return out, err
			}
			out = append(out, se)
		}
	}
	return out, nil
}

// stabReinsertAll inserts the given entries into the pinned node's stab
// list, recomputing each entry's primary key within this node. Entries not
// stabbed by any key of the node are returned as rejects.
func (t *Tree) stabReinsertAll(node []byte, entries []stabEntry) ([]stabEntry, error) {
	var rejects []stabEntry
	for _, se := range entries {
		if primaryKeyIndex(node, se.start, se.end) < 0 {
			rejects = append(rejects, se)
			continue
		}
		if err := t.stabInsertElement(node, se.element(t.docID)); err != nil {
			return rejects, err
		}
	}
	return rejects, nil
}

// rekeyStabbedPrefix restores the primary-key grouping (Definition 2) after
// key li was inserted into — or increased in — the pinned node: entries of
// the successor key's PSL that are stabbed by key li now have key li as
// their smallest stabbing key and must move into PSL(key li). By strict
// nesting the affected entries are a prefix of the successor's PSL, and the
// (ps, pe) guard makes the call free when nothing is affected.
func (t *Tree) rekeyStabbedPrefix(node []byte, li int) error {
	m := intCount(node)
	if li+1 >= m {
		return nil
	}
	k := intKey(node, li)
	var moved []stabEntry
	for {
		ps := keyPS(node, li+1)
		if ps == 0 || !(ps <= k && k <= keyPE(node, li+1)) {
			break
		}
		se, err := t.popPSLHead(node, li+1)
		if err != nil {
			return err
		}
		moved = append(moved, se)
	}
	for _, se := range moved {
		if err := t.stabInsertElement(node, se.element(t.docID)); err != nil {
			return err
		}
	}
	return nil
}

// splitStabChain partitions the pinned left node's stab chain around
// midKey: entries with key < midKey stay with left, entries with key >
// midKey move to the pinned right node's chain. Entries with key == midKey
// must have been extracted beforehand. The right node's key entries must
// already be populated (with directory pointers copied from the left node,
// which remain valid page ids and are fixed up here when the boundary page
// is split).
func (t *Tree) splitStabChain(left, right []byte, midKey uint32) error {
	setStabHead(right, pagefile.InvalidPage)
	setStabTail(right, pagefile.InvalidPage)
	// Locate the first right-hand entry via the right node's directory: the
	// first key with a non-empty PSL owns the first entry with key > midKey.
	rm := intCount(right)
	firstRight := -1
	for i := 0; i < rm; i++ {
		if keyPSLPage(right, i) != pagefile.InvalidPage {
			firstRight = i
			break
		}
	}
	if firstRight < 0 {
		return nil // nothing moves; left keeps the whole chain
	}
	bID := keyPSLPage(right, firstRight)
	bData, err := t.fetchStab(bID)
	if err != nil {
		return err
	}
	n := stabCount(bData)
	idx := 0
	for idx < n && stabEntryAt(bData, idx).key <= midKey {
		idx++
	}
	oldTail := stabTail(left)

	if idx == 0 {
		// Clean split between pages: B and everything after belong to right.
		prev := stabPrev(bData)
		setStabPrev(bData, pagefile.InvalidPage)
		if err := t.unpin(bID, true); err != nil {
			return err
		}
		if prev != pagefile.InvalidPage {
			pd, err := t.fetchStab(prev)
			if err != nil {
				return err
			}
			setStabNext(pd, pagefile.InvalidPage)
			if err := t.unpin(prev, true); err != nil {
				return err
			}
			setStabTail(left, prev)
		} else {
			setStabHead(left, pagefile.InvalidPage)
			setStabTail(left, pagefile.InvalidPage)
		}
		setStabHead(right, bID)
		setStabTail(right, oldTail)
		return nil
	}

	if idx == n {
		// All of B stays left; right's chain starts at B.next. (Possible
		// when the directory pointed at a page whose right-key heads sit on
		// a later page — cannot happen for a head pointer, but guard.)
		next := stabNext(bData)
		setStabNext(bData, pagefile.InvalidPage)
		if err := t.unpin(bID, true); err != nil {
			return err
		}
		if next == pagefile.InvalidPage {
			return nil
		}
		nd, err := t.fetchStab(next)
		if err != nil {
			return err
		}
		setStabPrev(nd, pagefile.InvalidPage)
		if err := t.unpin(next, true); err != nil {
			return err
		}
		setStabTail(left, bID)
		setStabHead(right, next)
		setStabTail(right, oldTail)
		return nil
	}

	// Mixed page: move the suffix B[idx:] to a fresh page that becomes the
	// right chain's head. Only the page holding the split point is touched,
	// as §4.1 observes (Figure 5(a)).
	qID, qData, err := t.fetchNew()
	if err != nil {
		t.unpin(bID, false)
		return err
	}
	initStabPage(qData)
	moved := n - idx
	copy(qData[stabHeader:stabHeader+moved*stabEntrySize],
		bData[stabHeader+idx*stabEntrySize:stabHeader+n*stabEntrySize])
	setStabCount(qData, moved)
	setStabCount(bData, idx)
	t.stabPages.Add(1)

	oldNext := stabNext(bData)
	setStabNext(bData, pagefile.InvalidPage)
	setStabNext(qData, oldNext)
	setStabPrev(qData, pagefile.InvalidPage)
	if oldNext != pagefile.InvalidPage {
		nd, err := t.fetchStab(oldNext)
		if err != nil {
			t.unpin(qID, true)
			t.unpin(bID, true)
			return err
		}
		setStabPrev(nd, qID)
		if err := t.unpin(oldNext, true); err != nil {
			t.unpin(qID, true)
			t.unpin(bID, true)
			return err
		}
	}
	if err := t.unpin(qID, true); err != nil {
		t.unpin(bID, true)
		return err
	}
	if err := t.unpin(bID, true); err != nil {
		return err
	}

	setStabTail(left, bID)
	setStabHead(right, qID)
	if oldTail == bID {
		setStabTail(right, qID)
	} else {
		setStabTail(right, oldTail)
	}
	// Fix right-node directory entries that pointed at B: their heads are
	// in the moved suffix.
	for i := 0; i < rm; i++ {
		if keyPSLPage(right, i) == bID {
			setKeyPSLPage(right, i, qID)
		}
	}
	return nil
}

// mergeStabChains appends the right node's chain to the left node's chain.
// Directory pointers inside the right node's key entries remain valid; the
// caller copies those entries into the merged node afterwards.
func (t *Tree) mergeStabChains(left, right []byte) error {
	rHead := stabHead(right)
	if rHead == pagefile.InvalidPage {
		return nil
	}
	lTail := stabTail(left)
	if lTail == pagefile.InvalidPage {
		setStabHead(left, rHead)
		setStabTail(left, stabTail(right))
		return nil
	}
	td, err := t.fetchStab(lTail)
	if err != nil {
		return err
	}
	setStabNext(td, rHead)
	if err := t.unpin(lTail, true); err != nil {
		return err
	}
	hd, err := t.fetchStab(rHead)
	if err != nil {
		return err
	}
	setStabPrev(hd, lTail)
	if err := t.unpin(rHead, true); err != nil {
		return err
	}
	setStabTail(left, stabTail(right))
	return nil
}

// stabEntriesAll returns every entry of the pinned node's stab list in
// chain order (used by the invariant checker and tests).
func (t *Tree) stabEntriesAll(node []byte) ([]stabEntry, error) {
	var out []stabEntry
	p := stabHead(node)
	for p != pagefile.InvalidPage {
		data, err := t.fetchStab(p)
		if err != nil {
			return nil, err
		}
		n := stabCount(data)
		for i := 0; i < n; i++ {
			out = append(out, stabEntryAt(data, i))
		}
		next := stabNext(data)
		if err := t.unpin(p, false); err != nil {
			return nil, err
		}
		p = next
	}
	return out, nil
}
