package core

// Statistics walkers for the §3.3 stab-list size study and the space
// accounting in EXPERIMENTS.md.

import (
	"xrtree/internal/pagefile"
)

// SpaceStats describes the tree's page footprint.
type SpaceStats struct {
	LeafPages     int
	InternalNodes int
	StabPages     int // total stab-list pages
	StabEntries   int // total elements held in stab lists
	// StabPagesPerNode holds, for every internal node, the length of its
	// stab-list chain in pages (zero entries included).
	StabPagesPerNode []int
	// MaxStabPages is the longest stab-list chain.
	MaxStabPages int
}

// AvgStabPages returns the mean stab-chain length over internal nodes.
func (s SpaceStats) AvgStabPages() float64 {
	if s.InternalNodes == 0 {
		return 0
	}
	return float64(s.StabPages) / float64(s.InternalNodes)
}

// Space walks the tree and reports its page footprint. Read-only; it
// takes the write latch so the walk sees a structurally quiescent tree.
func (t *Tree) Space() (SpaceStats, error) {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	var st SpaceStats
	root, h := t.loadRoot()
	if err := t.spaceWalk(root, h, &st); err != nil {
		return SpaceStats{}, err
	}
	return st, nil
}

func (t *Tree) spaceWalk(id pagefile.PageID, height int, st *SpaceStats) error {
	data, err := t.fetch(id)
	if err != nil {
		return err
	}
	if height == 1 {
		st.LeafPages++
		return t.unpin(id, false)
	}
	st.InternalNodes++
	pages := 0
	p := stabHead(data)
	for p != pagefile.InvalidPage {
		sd, err := t.fetchStab(p)
		if err != nil {
			t.unpin(id, false)
			return err
		}
		pages++
		st.StabEntries += stabCount(sd)
		next := stabNext(sd)
		if err := t.unpin(p, false); err != nil {
			t.unpin(id, false)
			return err
		}
		p = next
	}
	st.StabPages += pages
	st.StabPagesPerNode = append(st.StabPagesPerNode, pages)
	if pages > st.MaxStabPages {
		st.MaxStabPages = pages
	}
	m := intCount(data)
	children := make([]pagefile.PageID, 0, m+1)
	for i := 0; i <= m; i++ {
		children = append(children, intChild(data, i))
	}
	if err := t.unpin(id, false); err != nil {
		return err
	}
	for _, c := range children {
		if err := t.spaceWalk(c, height-1, st); err != nil {
			return err
		}
	}
	return nil
}

// MaxNesting returns the deepest ancestor chain among the indexed elements
// (the h_d of the S_max = 2·h_d bound in §3.3), computed by a leaf sweep.
func (t *Tree) MaxNesting() (int, error) {
	it, err := t.Scan(nil)
	if err != nil {
		return 0, err
	}
	defer it.Close()
	var stack []uint32 // open region ends
	max := 0
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		for len(stack) > 0 && stack[len(stack)-1] < e.Start {
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, e.End)
		if len(stack) > max {
			max = len(stack)
		}
	}
	return max, it.Err()
}
