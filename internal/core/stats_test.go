package core

import (
	"math/rand"
	"testing"

	"xrtree/internal/xmldoc"
)

func TestSpaceMatchesStabStats(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	es := genNested(rng, 800, 14)
	pool := newPool(t, 512, 256)
	tr := buildTree(t, pool, es, Options{})

	space, err := tr.Space()
	if err != nil {
		t.Fatal(err)
	}
	entries, pages := tr.StabStats()
	if space.StabEntries != entries {
		t.Errorf("Space.StabEntries = %d, StabStats = %d", space.StabEntries, entries)
	}
	if space.StabPages != pages {
		t.Errorf("Space.StabPages = %d, StabStats = %d", space.StabPages, pages)
	}
	if space.LeafPages == 0 || space.InternalNodes == 0 {
		t.Errorf("degenerate space stats: %+v", space)
	}
	if len(space.StabPagesPerNode) != space.InternalNodes {
		t.Errorf("per-node list has %d entries for %d nodes",
			len(space.StabPagesPerNode), space.InternalNodes)
	}
	sum := 0
	max := 0
	for _, n := range space.StabPagesPerNode {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum != space.StabPages || max != space.MaxStabPages {
		t.Errorf("per-node totals: sum=%d max=%d, header says %d/%d",
			sum, max, space.StabPages, space.MaxStabPages)
	}
	if space.AvgStabPages() <= 0 {
		t.Errorf("AvgStabPages = %f", space.AvgStabPages())
	}
	if pool.PinnedCount() != 0 {
		t.Errorf("Space leaked %d pins", pool.PinnedCount())
	}
}

func TestMaxNesting(t *testing.T) {
	// A chain of depth exactly 7 plus shallow siblings.
	var es []xmldoc.Element
	for i := 0; i < 7; i++ {
		es = append(es, xmldoc.Element{
			DocID: 1, Start: uint32(i + 1), End: uint32(100 - i), Level: uint16(i + 1),
		})
	}
	es = append(es,
		xmldoc.Element{DocID: 1, Start: 200, End: 201, Level: 1},
		xmldoc.Element{DocID: 1, Start: 210, End: 215, Level: 1},
		xmldoc.Element{DocID: 1, Start: 211, End: 212, Level: 2},
	)
	xmldoc.SortByStart(es)
	pool := newPool(t, 256, 64)
	tr := buildTree(t, pool, es, Options{})
	got, err := tr.MaxNesting()
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("MaxNesting = %d, want 7", got)
	}
}

func TestMaxNestingEmptyAndFlat(t *testing.T) {
	pool := newPool(t, 256, 64)
	tr, err := New(pool, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := tr.MaxNesting(); err != nil || got != 0 {
		t.Errorf("empty MaxNesting = %d, %v", got, err)
	}
	for i := 0; i < 10; i++ {
		tr.Insert(xmldoc.Element{DocID: 1, Start: uint32(3*i + 1), End: uint32(3*i + 2)})
	}
	if got, err := tr.MaxNesting(); err != nil || got != 1 {
		t.Errorf("flat MaxNesting = %d, %v", got, err)
	}
}
