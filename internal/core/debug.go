package core

import "xrtree/internal/invariant"

// Debug-build (xrtreedebug) oracles for the XR-tree's structural
// invariants. Both hooks are gated on the invariant.Enabled constant and
// compile away in release builds.

// Beyond debugFullCheckBelow elements, only every debugCheckStride-th
// mutation runs the full checker — it walks the whole tree, so checking
// every operation would make the randomized soak tests quadratic.
const (
	debugFullCheckBelow = 512
	debugCheckStride    = 64
)

// debugPostMutation runs after a successful mutation with the write latch
// still held: on a sampled schedule it re-validates the entire tree —
// stab-chain ordering and disjointness, per-key (ps,pe) and head
// directories, strict PSL nesting, leaf-flag placement. It always returns
// nil; a violation panics through invariant.Assertf.
func (t *Tree) debugPostMutation() error {
	if !invariant.Enabled {
		return nil
	}
	t.debugOps++
	if t.count.Load() > debugFullCheckBelow && t.debugOps%debugCheckStride != 0 {
		return nil
	}
	err := t.checkInvariantsLocked()
	invariant.Assertf(err == nil, "post-mutation tree check: %v", err)
	return nil
}

// debugReadEnter brackets a reader section that pins pool frames, for the
// pin ledger below. Returns the exit func; a no-op in release builds.
func (t *Tree) debugReadEnter() func() {
	if !invariant.Enabled {
		return func() {}
	}
	t.debugReadActive.Add(1)
	t.debugReadEpoch.Add(1)
	return func() { t.debugReadActive.Add(-1) }
}

// debugPinBalance snapshots the pool's pinned-frame count at operation
// entry; the returned func asserts it is unchanged at exit. Registered
// after the latch defer, it runs while the tree is still write-latched, so
// no other writer can be mid-flight — but readers latch pages, not the
// tree, and hold pins of their own. The balance is only asserted when no
// reader section overlapped the bracket (epoch unchanged, none active at
// either end); otherwise the delta is not attributable and the check is
// skipped. Operations on other trees sharing the pool must be quiescent,
// which holds for every build and mutation phase in the test suites.
func (t *Tree) debugPinBalance() func() {
	if !invariant.Enabled {
		return func() {}
	}
	before := t.pool.PinnedCount()
	epoch := t.debugReadEpoch.Load()
	activeBefore := t.debugReadActive.Load()
	return func() {
		after := t.pool.PinnedCount()
		if activeBefore != 0 || t.debugReadActive.Load() != 0 || t.debugReadEpoch.Load() != epoch {
			return
		}
		invariant.Assertf(after == before,
			"pin balance: %d frames pinned at operation entry, %d at exit", before, after)
	}
}
