package core

// §5.1: the two basic operations a structural join needs. FindDescendants
// (Algorithm 3) is a plain range scan over the leaf chain — stab lists are
// never touched — achieving the optimal O(log_F N + R/B) of Theorem 3.
// FindAncestors (Algorithm 4) collects, during the ordinary root→leaf
// descent for the probe position, the stabbed elements from the stab lists
// of the nodes on the path (Algorithm 5), then finishes in the leaf with
// the entries whose InStabList flag is clear; Lemma 1 guarantees this sees
// every ancestor, and the per-key (ps, pe) test guarantees a stab page is
// only read when it holds at least one result — Theorem 4's O(log_F N + R).

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// FindAncestors returns every indexed element that is a strict ancestor of
// a region starting at sd — i.e. every element (s, e) with s < sd < e —
// sorted by ascending start. Elements with start ≤ minStart are skipped;
// the XR-stack join passes the stack top's start so only ancestors "after
// the stack top" are returned (§5.2). Pass 0 for all ancestors.
func (t *Tree) FindAncestors(sd uint32, minStart uint32, c *metrics.Counters) ([]xmldoc.Element, error) {
	return t.AppendAncestors(nil, sd, minStart, c)
}

// stabProbeRetries bounds the optimistic ancestor-probe attempts before a
// probe serializes behind the writers for an exact answer.
const stabProbeRetries = 8

// AppendAncestors is FindAncestors appending into dst (reusing its
// capacity), for callers that probe in a loop — the XR-stack join calls it
// once per descendant group.
//
// Probes run latch-crabbing-free and validate the stab-move epoch
// (seqlock style): page latches make each node+chain read atomic, but a
// structural change can move stabbed elements upward between a node the
// probe already visited and one it has not reached yet — no top-down
// single-pass reader can latch that away. A probe overlapping such a move
// discards its result and retries; moves only accompany splits and
// rebalances, so retries are rare even under sustained ingest.
func (t *Tree) AppendAncestors(dst []xmldoc.Element, sd uint32, minStart uint32, c *metrics.Counters) ([]xmldoc.Element, error) {
	if err := c.Interrupted(); err != nil {
		return nil, err
	}
	//xrvet:bounded at most stabProbeRetries optimistic attempts
	for attempt := 0; attempt < stabProbeRetries; attempt++ {
		e1 := t.stabEpoch.Load()
		if e1&1 == 1 {
			// A writer is mid-move; its bracket closes at operation commit.
			runtime.Gosched()
			continue
		}
		out, err := t.appendAncestorsOnce(dst, sd, minStart, c)
		if t.stabEpoch.Load() == e1 {
			return out, err
		}
		// A move overlapped the probe (this also covers transient errors
		// from pages recycled by a concurrent merge): discard and retry.
		if err := c.Interrupted(); err != nil {
			return nil, err
		}
	}
	// Sustained churn: serialize behind the writers for an exact answer.
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	return t.appendAncestorsOnce(dst, sd, minStart, c)
}

// appendAncestorsOnce is one optimistic probe; see AppendAncestors.
func (t *Tree) appendAncestorsOnce(dst []xmldoc.Element, sd uint32, minStart uint32, c *metrics.Counters) ([]xmldoc.Element, error) {
	defer t.debugReadEnter()()
	out := dst
	id, h := t.loadRoot()
	var data []byte
	// B-link descent holding one shared page latch at a time. The node's
	// latch covers its stab chain too (writers only mutate a chain under
	// the owning node's exclusive latch), so S11 runs under the latch that
	// the fetch below takes. A key ≥ the node's high key means a concurrent
	// split moved its range right: follow the right link instead of a
	// child — no restart, no tree-wide latch.
	//xrvet:bounded root-to-leaf descent, h levels plus finitely many right hops
	for {
		t.pl.RLock(id)
		d, err := t.pool.FetchTraced(id, c.TraceSink())
		if err != nil {
			t.pl.RUnlock(id)
			return nil, err
		}
		if isLeaf(d) {
			if moveRight(leafHigh(d), leafNext(d), sd) {
				next := leafNext(d)
				err := t.pool.Unpin(id, false)
				t.pl.RUnlock(id)
				if err != nil {
					return nil, err
				}
				if err := c.Interrupted(); err != nil {
					return nil, err
				}
				addLeaf(c)
				id = next
				continue
			}
			data = d // stays pinned and share-latched for the S2 scan
			break
		}
		if d[0] != internalType {
			t.pool.Unpin(id, false)
			t.pl.RUnlock(id)
			return nil, fmt.Errorf("%w: expected node at page %d", ErrCorrupt, id)
		}
		addNode(c)
		if moveRight(intHigh(d), intNext(d), sd) {
			next := intNext(d)
			err := t.pool.Unpin(id, false)
			t.pl.RUnlock(id)
			if err != nil {
				return nil, err
			}
			if err := c.Interrupted(); err != nil {
				return nil, err
			}
			id = next
			continue
		}
		// S11: collect stabbed elements from this node's stab list.
		if err := t.searchStabList(d, sd, minStart, c, &out); err != nil {
			t.pool.Unpin(id, false)
			t.pl.RUnlock(id)
			return nil, err
		}
		// S12/S13: descend by the largest key ≤ sd.
		child := intChild(d, intSearch(d, sd))
		err = t.pool.Unpin(id, false)
		t.pl.RUnlock(id)
		if err != nil {
			return nil, err
		}
		id = child
	}

	// S2: scan the leaf for stabbed elements whose flag is clear, stopping
	// at the first start beyond sd. Entries at or before minStart cannot be
	// results, so the scan starts right after it — the "ancestors after the
	// stack top" variation of §5.2 that keeps the per-probe cost at
	// O(new ancestors + elements between the stack top and sd in this leaf)
	// rather than half a leaf.
	addLeaf(c)
	c.Emit(obs.EvIndexDescend, int64(h))
	n := leafCount(data)
	first := 0
	if minStart > 0 {
		first = leafSearch(data, minStart+1)
	}
	// Elements-scanned accounting (the Table 2/3 metric): FindAncestors
	// charges exactly the ancestors it retrieves — the R of Theorem 4.
	// In-page positioning reads (closed subtrees jumped via their End, the
	// terminal boundary entry) cost no I/O and are index work, which is how
	// the paper's XR numbers behave (≈ joined ancestors + consumed
	// descendants; see EXPERIMENTS.md).
	examined := 0
	for i := first; i < n; {
		examined++
		el, fl := leafElem(data, i)
		if el.Start >= sd {
			break
		}
		if el.End <= sd {
			// el closes at or before sd, so by strict nesting nothing
			// inside el can strictly contain sd either: skip its whole
			// subtree within this leaf.
			i = leafSearch(data, el.End+1)
			continue
		}
		if fl&xmldoc.FlagInStabList == 0 && el.Start > minStart {
			el.DocID = t.docID
			addScan(c, 1)
			out = append(out, el)
		}
		i++
	}
	c.Emit(obs.EvLeafScan, int64(examined))
	c.Emit(obs.EvAncProbe, int64(len(out)-len(dst)))
	err := t.pool.Unpin(id, false)
	t.pl.RUnlock(id)
	if err != nil {
		return nil, err
	}
	// Only the appended tail needs ordering; dst's prefix is untouched.
	tail := out[len(dst):]
	sort.Slice(tail, func(i, j int) bool { return tail[i].Start < tail[j].Start })
	return out, nil
}

// searchStabList implements Algorithm 5 over the pinned node: with sd in
// [k_i, k_{i+1}), only PSLs of keys ≤ k_{i+1} can hold stabbed elements,
// and a PSL is only read when its in-entry (ps, pe) proves its first —
// outermost — element is stabbed; the stabbed elements then form a prefix.
func (t *Tree) searchStabList(node []byte, sd uint32, minStart uint32, c *metrics.Counters, out *[]xmldoc.Element) error {
	m := intCount(node)
	i := intSearch(node, sd) - 1 // largest key ≤ sd
	hi := i + 1
	if hi >= m {
		hi = m - 1
	}
	for i2 := hi; i2 >= 0; i2-- {
		ps := keyPS(node, i2)
		if ps == 0 || !(ps < sd && sd < keyPE(node, i2)) {
			continue
		}
		before := len(*out)
		if err := t.scanPSL(node, i2, sd, minStart, c, out); err != nil {
			return err
		}
		c.Emit(obs.EvStabScan, int64(len(*out)-before))
	}
	return nil
}

// scanPSL walks PSL(c) from its directory pointer, emitting elements while
// they stab sd (line 4 of Algorithm 5). Entries at or before minStart are
// already known to the caller (they are on the join's stack), and since a
// PSL is start-sorted they can be jumped over with an in-page binary search
// rather than scanned — the stabbed, still-unreported elements form a
// contiguous run ending at the first non-stabbing entry.
//
// The caller holds the owning node's shared page latch, which is what makes
// the chain walk safe against concurrent writers: stab pages carry no latch
// of their own, and every chain mutation happens under the node's exclusive
// latch. Fetches and unpins here are the plain pool calls — this is a
// reader path and must not touch the writer's t.tx.
func (t *Tree) scanPSL(node []byte, ki int, sd uint32, minStart uint32, c *metrics.Counters, out *[]xmldoc.Element) error {
	kv := intKey(node, ki)
	p := keyPSLPage(node, ki)
	for p != pagefile.InvalidPage {
		// A PSL chain grows with the document (deep nesting under one
		// key), so the walk polls for cancellation at page granularity
		// like every other unbounded read path.
		if err := c.Interrupted(); err != nil {
			return err
		}
		data, err := t.fetchStabRead(p, c.TraceSink())
		if err != nil {
			return err
		}
		addStabPage(c)
		n := stabCount(data)
		i := stabLowerBound(data, kv, minStart+1)
		for ; i < n; i++ {
			en := stabEntryAt(data, i)
			if en.key != kv {
				return t.pool.Unpin(p, false)
			}
			if !(en.start < sd && sd < en.end) {
				// Terminal entry of the stabbed prefix: free, as in S2.
				return t.pool.Unpin(p, false)
			}
			addScan(c, 1)
			*out = append(*out, en.element(t.docID))
		}
		next := stabNext(data)
		if err := t.pool.Unpin(p, false); err != nil {
			return err
		}
		p = next
	}
	return nil
}

// stabLowerBound returns the index of the first entry on the page with
// (key, start) ≥ (kv, start), by binary search.
func stabLowerBound(data []byte, kv, start uint32) int {
	lo, hi := 0, stabCount(data)
	for lo < hi {
		mid := (lo + hi) / 2
		en := stabEntryAt(data, mid)
		if stabLess(en.key, en.start, kv, start) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// FindParent returns the parent (level-aware ancestor, §5.3) of a region
// starting at sd whose level is level−1, if indexed.
func (t *Tree) FindParent(sd uint32, level uint16, c *metrics.Counters) (xmldoc.Element, bool, error) {
	anc, err := t.FindAncestors(sd, 0, c)
	if err != nil {
		return xmldoc.Element{}, false, err
	}
	for _, a := range anc {
		if a.Level == level-1 {
			return a, true, nil
		}
	}
	return xmldoc.Element{}, false, nil
}

// pageBufs pools the per-iterator leaf-copy buffers; the XR-stack join
// reopens its descendant iterator on every skip, so Seek/Close must not
// allocate.
var pageBufs sync.Pool

func getPageBuf(n int) []byte {
	if v := pageBufs.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putPageBuf(b []byte) {
	if b != nil {
		pageBufs.Put(&b)
	}
}

// Iterator walks leaf entries in ascending start order. It owns a private
// copy of the current leaf, so it holds no page pin and no tree latch
// between calls: any number of iterators — including several on one tree
// within a single goroutine, as self-joins require — coexist with point
// queries and with writers queued on the latch. A scan racing a concurrent
// Delete's page merge may observe a recycled page; that is detected
// (ErrCorrupt) rather than latched away. Close returns the copy to a pool.
type Iterator struct {
	t    *Tree
	c    *metrics.Counters
	buf  []byte
	idx  int
	err  error
	done bool
}

// readPage copies page id into buf under its shared page latch. The copy
// decouples the caller from writers: once the latch is dropped the bytes
// are private, so no pin or latch outlives the call.
func (t *Tree) readPage(id pagefile.PageID, buf []byte, c *metrics.Counters) error {
	defer t.debugReadEnter()()
	t.pl.RLock(id)
	err := t.pool.FetchCopyTraced(id, buf, c.TraceSink())
	t.pl.RUnlock(id)
	return err
}

// descendToLeafCopy runs the B-link root-to-leaf descent for key and
// leaves a private copy of the leaf that covers key in buf. Each step
// holds one shared page latch only while copying; a key at or beyond a
// page's high key follows the right link (a concurrent split moved the
// range) instead of restarting.
func (t *Tree) descendToLeafCopy(key uint32, c *metrics.Counters, buf []byte) error {
	id, h := t.loadRoot()
	//xrvet:bounded root-to-leaf descent, h levels plus finitely many right hops
	for {
		if err := t.readPage(id, buf, c); err != nil {
			return err
		}
		if isLeaf(buf) {
			if moveRight(leafHigh(buf), leafNext(buf), key) {
				if err := c.Interrupted(); err != nil {
					return err
				}
				addLeaf(c)
				id = leafNext(buf)
				continue
			}
			addLeaf(c)
			c.Emit(obs.EvIndexDescend, int64(h))
			return nil
		}
		if buf[0] != internalType {
			return fmt.Errorf("%w: expected node at page %d", ErrCorrupt, id)
		}
		addNode(c)
		if moveRight(intHigh(buf), intNext(buf), key) {
			if err := c.Interrupted(); err != nil {
				return err
			}
			id = intNext(buf)
			continue
		}
		id = intChild(buf, intSearch(buf, key))
	}
}

// SeekGE returns an iterator positioned at the first element with
// start ≥ key. FindDescendants and the XR-stack skip operations are built
// on it.
func (t *Tree) SeekGE(key uint32, c *metrics.Counters) (*Iterator, error) {
	if err := c.Interrupted(); err != nil {
		return nil, err
	}
	buf := getPageBuf(t.pool.File().PageSize())
	if err := t.descendToLeafCopy(key, c, buf); err != nil {
		putPageBuf(buf)
		return nil, err
	}
	t.hintNextLeaf(c, buf)
	return &Iterator{t: t, c: c, buf: buf, idx: leafSearch(buf, key)}, nil
}

// hintNextLeaf publishes the chained next leaf to the pool's prefetcher,
// so a leaf-chain scan's I/O overlaps the scan of the current leaf.
func (t *Tree) hintNextLeaf(c *metrics.Counters, buf []byte) {
	if t.pool.PrefetchEnabled() {
		if next := leafNext(buf); next != pagefile.InvalidPage {
			t.pool.Prefetch(c, next)
		}
	}
}

// PrefetchGE publishes a readahead hint for the landing page of a future
// SeekGE(key) or AppendAncestors(key) — the XR-stack join calls it for a
// skip target before starting the stab-list work that precedes the skip,
// so the landing page's I/O overlaps the in-flight probe. The descent
// walks resident pages only (no I/O, no pins held across pages, no
// hit/miss accounting) and hints the first non-resident page on the path.
func (t *Tree) PrefetchGE(key uint32, c *metrics.Counters) {
	if !t.pool.PrefetchEnabled() {
		return
	}
	buf := getPageBuf(t.pool.File().PageSize())
	defer putPageBuf(buf)
	defer t.debugReadEnter()()
	id, h := t.loadRoot()
	//xrvet:bounded advisory root-to-leaf descent, at most h iterations
	for level := h; level > 1; level-- {
		// Advisory path: on latch contention just hint the page reached so
		// far rather than waiting behind a writer.
		if !t.pl.TryRLock(id) {
			break
		}
		ok, err := t.pool.TryFetchCopy(id, buf)
		t.pl.RUnlock(id)
		if err != nil || !ok || isLeaf(buf) {
			break
		}
		id = intChild(buf, intSearch(buf, key))
	}
	// id is the first page the future probe will miss on (or its leaf).
	t.pool.Prefetch(c, id)
}

// Scan returns an iterator over the whole indexed set.
func (t *Tree) Scan(c *metrics.Counters) (*Iterator, error) { return t.SeekGE(0, c) }

// Next returns the next element; each returned element counts as scanned.
func (it *Iterator) Next() (xmldoc.Element, bool) {
	if it.err != nil || it.done {
		return xmldoc.Element{}, false
	}
	for {
		if it.idx < leafCount(it.buf) {
			e, _ := leafElem(it.buf, it.idx)
			e.DocID = it.t.docID
			it.idx++
			addScan(it.c, 1)
			return e, true
		}
		if !it.advancePage() {
			return xmldoc.Element{}, false
		}
	}
}

// Peek returns the element Next would return without consuming it and
// without counting a scan.
func (it *Iterator) Peek() (xmldoc.Element, bool) {
	if it.err != nil || it.done {
		return xmldoc.Element{}, false
	}
	for it.idx >= leafCount(it.buf) {
		if !it.advancePage() {
			return xmldoc.Element{}, false
		}
	}
	e, _ := leafElem(it.buf, it.idx)
	e.DocID = it.t.docID
	return e, true
}

// advancePage replaces the iterator's leaf copy with the next leaf on the
// chain, taking only that page's shared latch for the hop.
func (it *Iterator) advancePage() bool {
	next := leafNext(it.buf)
	if next == pagefile.InvalidPage {
		it.done = true
		return false
	}
	// Page boundary: the natural cancellation point of a leaf-chain scan.
	if err := it.c.Interrupted(); err != nil {
		it.err = err
		return false
	}
	if err := it.t.readPage(next, it.buf, it.c); err != nil {
		it.err = err
		return false
	}
	if !isLeaf(it.buf) {
		// The page was merged away and recycled between hops.
		it.err = fmt.Errorf("%w: leaf chain broken at page %d by a concurrent structural change", ErrCorrupt, next)
		return false
	}
	it.t.hintNextLeaf(it.c, it.buf)
	it.idx = 0
	if it.c != nil {
		it.c.LeafReads++
	}
	return true
}

// Err returns the first iteration error.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's page copy; safe to call repeatedly.
func (it *Iterator) Close() error {
	if it.buf != nil {
		putPageBuf(it.buf)
		it.buf = nil
	}
	return it.err
}

// FindDescendants returns every indexed element strictly inside (sa, ea):
// Algorithm 3, a range query over start positions.
func (t *Tree) FindDescendants(sa, ea uint32, c *metrics.Counters) ([]xmldoc.Element, error) {
	it, err := t.SeekGE(sa+1, c)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []xmldoc.Element
	for {
		e, ok := it.Next()
		if !ok || e.Start >= ea {
			break
		}
		out = append(out, e)
	}
	return out, it.Err()
}

// FindChildren returns the indexed elements that are children (§5.3) of an
// element (sa, ea) at the given level: descendants with level+1.
func (t *Tree) FindChildren(sa, ea uint32, level uint16, c *metrics.Counters) ([]xmldoc.Element, error) {
	des, err := t.FindDescendants(sa, ea, c)
	if err != nil {
		return nil, err
	}
	out := des[:0]
	for _, d := range des {
		if d.Level == level+1 {
			out = append(out, d)
		}
	}
	return out, nil
}
