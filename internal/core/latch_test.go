package core

import (
	"math/rand"
	"sync"
	"testing"

	"xrtree/internal/metrics"
	"xrtree/internal/xmldoc"
)

// TestReaderDuringInsert exercises the latching protocol: readers run
// FindAncestors, FindDescendants, Lookup, and full scans while a writer
// keeps inserting. The writer's elements live in a position range disjoint
// from the probed one, so reader results over the static range must stay
// exactly right even as inserts split leaves and grow the root under them.
// Run with -race.
func TestReaderDuringInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	static := genNested(rng, 1500, 12)
	pool := newPool(t, 1024, 256)
	tr, err := New(pool, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(static, 0.7); err != nil {
		t.Fatal(err)
	}
	o := newOracle()
	for _, e := range static {
		o.insert(e)
	}
	maxPos := static[len(static)-1].End + 2

	stop := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Flat sibling regions strictly above maxPos: never ancestors or
		// descendants of anything in the probed range.
		pos := maxPos + 10
		for i := 0; i < 800; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := xmldoc.Element{DocID: 1, Start: pos, End: pos + 1, Level: 1}
			pos += 3
			if err := tr.Insert(e); err != nil {
				writerErr = err
				return
			}
		}
	}()

	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g) + 100))
			for i := 0; i < 150; i++ {
				var c metrics.Counters
				switch i % 4 {
				case 0:
					sd := uint32(r.Intn(int(maxPos)-2) + 2)
					got, err := tr.FindAncestors(sd, 0, &c)
					if err != nil {
						t.Errorf("FindAncestors(%d): %v", sd, err)
						return
					}
					if len(got) != len(o.ancestors(sd, 0)) {
						t.Errorf("FindAncestors(%d) wrong size during inserts", sd)
						return
					}
				case 1:
					a := static[r.Intn(len(static))]
					got, err := tr.FindDescendants(a.Start, a.End, &c)
					if err != nil {
						t.Errorf("FindDescendants(%d,%d): %v", a.Start, a.End, err)
						return
					}
					if len(got) != len(o.descendants(a.Start, a.End)) {
						t.Errorf("FindDescendants(%d,%d) wrong size during inserts", a.Start, a.End)
						return
					}
				case 2:
					e := static[r.Intn(len(static))]
					got, err := tr.Lookup(e.Start, &c)
					if err != nil {
						t.Errorf("Lookup(%d): %v", e.Start, err)
						return
					}
					if got.End != e.End {
						t.Errorf("Lookup(%d) = %v, want %v", e.Start, got, e)
						return
					}
				case 3:
					// Full scan across the growing region: must stay sorted
					// and cover at least the static set. Inserts only split
					// pages (never merge), so the hop-by-hop scan cannot
					// trip the recycled-page check.
					it, err := tr.Scan(&c)
					if err != nil {
						t.Errorf("Scan: %v", err)
						return
					}
					var prev uint32
					n := 0
					for {
						e, ok := it.Next()
						if !ok {
							break
						}
						if e.Start <= prev && n > 0 {
							t.Errorf("scan out of order: %d after %d", e.Start, prev)
							it.Close()
							return
						}
						prev = e.Start
						n++
					}
					if err := it.Close(); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
					if n < len(static) {
						t.Errorf("scan saw %d elements, want ≥ %d", n, len(static))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
