package core

// CheckInvariants verifies the full Definition 4 of the paper plus the
// derived bookkeeping, and is run after every operation in the randomized
// tests. It is deliberately exhaustive rather than fast.

import (
	"fmt"

	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// CheckInvariants walks the whole tree and validates:
//
//  1. B+-tree structure: key ordering, separation, child counts, leaf chain
//     links, and the element count.
//  2. Stab lists: chain links, (key, start) ordering, each entry's key is
//     its element's primary stabbing key of that node, per-key (ps, pe) and
//     head pointers match the chain, and PSL elements are strictly nested.
//  3. Global placement: every indexed element appears in the stab list of
//     exactly the highest node (on its start path) with a stabbing key, and
//     its leaf InStabList flag mirrors that; elements in stab lists exist
//     in leaves; the meta stab counters match reality.
//  4. B-link structure: every page's high key equals its subtree's upper
//     bound (0 on the rightmost spine), and right links chain each level
//     left to right with no skips.
//
// CheckInvariants takes the write latch: it excludes writers for the whole
// walk (readers never modify pages and may run alongside it).
func (t *Tree) CheckInvariants() error {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	return t.checkInvariantsLocked()
}

// checkInvariantsLocked is CheckInvariants for callers that already hold
// the write latch — taking it here would self-deadlock the debug build's
// post-mutation sampling, which runs under the write latch.
func (t *Tree) checkInvariantsLocked() error {
	root, h := t.loadRoot()
	ck := &checker{t: t, rootH: h}
	if _, _, _, err := ck.walk(root, h, 0, ^uint32(0), nil); err != nil {
		return err
	}
	if int64(ck.elemCount) != t.count.Load() {
		return fmt.Errorf("xrtree: meta count %d but %d elements in leaves", t.count.Load(), ck.elemCount)
	}
	if int64(ck.stabEntries) != t.stabCount.Load() {
		return fmt.Errorf("xrtree: meta stabCount %d but %d stab entries", t.stabCount.Load(), ck.stabEntries)
	}
	if int64(ck.stabPages) != t.stabPages.Load() {
		return fmt.Errorf("xrtree: meta stabPages %d but %d stab pages", t.stabPages.Load(), ck.stabPages)
	}
	if ck.flaggedLeaf != ck.stabEntries {
		return fmt.Errorf("xrtree: %d flagged leaf entries but %d stab entries", ck.flaggedLeaf, ck.stabEntries)
	}
	return ck.checkPlacement()
}

type checker struct {
	t           *Tree
	rootH       int
	elemCount   int
	stabEntries int
	stabPages   int
	flaggedLeaf int
	prevLeaf    pagefile.PageID
	prevLeafKey uint32
	// nextAt records, per height, the right link of the previously visited
	// page so the next page visited at that height can be checked against
	// it — an in-order walk visits each level left to right.
	nextAt map[int]pagefile.PageID
	// elements maps start → (end, flagged) for the placement check.
	elements []checkedElem
	// stabbed maps start → node path info: each stab entry with the id of
	// the node holding it and that node's height.
	stabbed map[uint32]stabHome
}

type checkedElem struct {
	start, end uint32
	flagged    bool
}

type stabHome struct {
	height int
	key    uint32
	end    uint32
}

// walk validates the subtree rooted at id whose keys lie in [lo, hi).
// ancKeys carries the keys of all ancestor nodes for placement checks.
// It returns the subtree's smallest and largest leaf keys.
func (ck *checker) walk(id pagefile.PageID, height int, lo, hi uint32, ancKeys []uint32) (minKey, maxKey uint32, empty bool, err error) {
	t := ck.t
	data, err := t.fetch(id)
	if err != nil {
		return 0, 0, true, err
	}
	defer t.unpin(id, false)

	// B-link invariants (shared by leaves and internal nodes): the high key
	// mirrors the subtree's upper bound — 0, the +∞ sentinel, exactly on
	// the rightmost spine where hi is unbounded — and right links chain the
	// level with no skips.
	var high uint32
	var right pagefile.PageID
	if height == 1 {
		high, right = leafHigh(data), leafNext(data)
	} else if !isLeaf(data) && data[0] == internalType {
		high, right = intHigh(data), intNext(data)
	}
	if hi == ^uint32(0) {
		if high != 0 {
			return 0, 0, true, fmt.Errorf("xrtree: rightmost page %d (height %d) has high key %d, want 0", id, height, high)
		}
		if right != pagefile.InvalidPage {
			return 0, 0, true, fmt.Errorf("xrtree: rightmost page %d (height %d) has right link %d", id, height, right)
		}
	} else {
		if high != hi {
			return 0, 0, true, fmt.Errorf("xrtree: page %d (height %d) high key %d, want %d", id, height, high, hi)
		}
		if right == pagefile.InvalidPage {
			return 0, 0, true, fmt.Errorf("xrtree: non-rightmost page %d (height %d) has no right link", id, height)
		}
	}
	if ck.nextAt == nil {
		ck.nextAt = make(map[int]pagefile.PageID)
	}
	if want, ok := ck.nextAt[height]; ok && want != id {
		return 0, 0, true, fmt.Errorf("xrtree: right link at height %d points at %d, next page in order is %d", height, want, id)
	}
	ck.nextAt[height] = right

	if height == 1 {
		if !isLeaf(data) {
			return 0, 0, true, fmt.Errorf("xrtree: page %d: expected leaf", id)
		}
		n := leafCount(data)
		if leafPrev(data) != ck.prevLeaf {
			return 0, 0, true, fmt.Errorf("xrtree: leaf %d prev = %d, want %d", id, leafPrev(data), ck.prevLeaf)
		}
		if ck.prevLeaf != pagefile.InvalidPage {
			pd, err := t.fetch(ck.prevLeaf)
			if err != nil {
				return 0, 0, true, err
			}
			nx := leafNext(pd)
			t.unpin(ck.prevLeaf, false)
			if nx != id {
				return 0, 0, true, fmt.Errorf("xrtree: leaf %d next = %d, want %d", ck.prevLeaf, nx, id)
			}
		}
		for i := 0; i < n; i++ {
			el, fl := leafElem(data, i)
			if i > 0 {
				prev, _ := leafElem(data, i-1)
				if prev.Start >= el.Start {
					return 0, 0, true, fmt.Errorf("xrtree: leaf %d unsorted at %d", id, i)
				}
			}
			if el.Start < lo || el.Start >= hi {
				return 0, 0, true, fmt.Errorf("xrtree: leaf %d entry %v outside [%d,%d)", id, el, lo, hi)
			}
			flagged := fl&xmldoc.FlagInStabList != 0
			if flagged {
				ck.flaggedLeaf++
			} else {
				// An unflagged element must not be stabbed by any key on its
				// path — otherwise it belongs in that node's stab list.
				for _, ak := range ancKeys {
					if el.Start <= ak && ak <= el.End {
						return 0, 0, true, fmt.Errorf("xrtree: unflagged element %v stabbed by path key %d", el, ak)
					}
				}
			}
			ck.elements = append(ck.elements, checkedElem{start: el.Start, end: el.End, flagged: flagged})
		}
		ck.elemCount += n
		if n == 0 {
			return 0, 0, true, nil
		}
		ck.prevLeaf = id
		ck.prevLeafKey = leafKey(data, n-1)
		return leafKey(data, 0), leafKey(data, n-1), false, nil
	}

	if isLeaf(data) || data[0] != internalType {
		return 0, 0, true, fmt.Errorf("xrtree: page %d: expected internal node at height %d", id, height)
	}
	m := intCount(data)
	if m < 1 && height != ck.rootH {
		return 0, 0, true, fmt.Errorf("xrtree: non-root node %d has %d keys", id, m)
	}
	keys := make([]uint32, m)
	for i := 0; i < m; i++ {
		keys[i] = intKey(data, i)
		if i > 0 && keys[i-1] >= keys[i] {
			return 0, 0, true, fmt.Errorf("xrtree: node %d keys unsorted at %d", id, i)
		}
		if keys[i] < lo || keys[i] >= hi {
			return 0, 0, true, fmt.Errorf("xrtree: node %d key %d outside [%d,%d)", id, keys[i], lo, hi)
		}
	}

	if err := ck.checkStabList(id, data, keys, height, ancKeys); err != nil {
		return 0, 0, true, err
	}

	childAnc := append(append([]uint32{}, ancKeys...), keys...)
	var first, last uint32
	seen := false
	for i := 0; i <= m; i++ {
		clo, chi := lo, hi
		if i > 0 {
			clo = keys[i-1]
		}
		if i < m {
			chi = keys[i]
		}
		cmin, cmax, cempty, err := ck.walk(intChild(data, i), height-1, clo, chi, childAnc)
		if err != nil {
			return 0, 0, true, err
		}
		if !cempty {
			if !seen {
				first = cmin
				seen = true
			}
			last = cmax
		}
	}
	return first, last, !seen, nil
}

// checkStabList validates one node's stab chain and directory.
func (ck *checker) checkStabList(id pagefile.PageID, node []byte, keys []uint32, height int, ancKeys []uint32) error {
	t := ck.t
	if ck.stabbed == nil {
		ck.stabbed = make(map[uint32]stabHome)
	}
	type headInfo struct {
		page  pagefile.PageID
		start uint32
		end   uint32
	}
	heads := make(map[uint32]headInfo)

	p := stabHead(node)
	var prevPage pagefile.PageID = pagefile.InvalidPage
	var lastKey, lastStart uint32
	haveLast := false
	var lastPSLKey uint32
	var lastPSLEnd uint32
	for p != pagefile.InvalidPage {
		data, err := t.fetchStab(p)
		if err != nil {
			return fmt.Errorf("xrtree: node %d stab chain: %w", id, err)
		}
		ck.stabPages++
		if stabPrev(data) != prevPage {
			t.unpin(p, false)
			return fmt.Errorf("xrtree: stab page %d prev = %d, want %d", p, stabPrev(data), prevPage)
		}
		n := stabCount(data)
		if n == 0 {
			t.unpin(p, false)
			return fmt.Errorf("xrtree: stab page %d of node %d is empty", p, id)
		}
		for i := 0; i < n; i++ {
			en := stabEntryAt(data, i)
			if haveLast && !stabLess(lastKey, lastStart, en.key, en.start) {
				t.unpin(p, false)
				return fmt.Errorf("xrtree: node %d stab chain unsorted: (%d,%d) then (%d,%d)",
					id, lastKey, lastStart, en.key, en.start)
			}
			// Primary key check: en.key must be the smallest node key
			// stabbing (start, end).
			j := primaryKeyIndex(node, en.start, en.end)
			if j < 0 || keys[j] != en.key {
				t.unpin(p, false)
				return fmt.Errorf("xrtree: node %d: entry (%d,%d) keyed %d, primary key index %d",
					id, en.start, en.end, en.key, j)
			}
			// No ancestor key may stab it (Definition 4.4).
			for _, ak := range ancKeys {
				if en.start <= ak && ak <= en.end {
					t.unpin(p, false)
					return fmt.Errorf("xrtree: node %d: entry (%d,%d) also stabbed by ancestor key %d",
						id, en.start, en.end, ak)
				}
			}
			// Strict nesting within a PSL: successive entries are nested.
			if haveLast && en.key == lastPSLKey {
				if en.end >= lastPSLEnd {
					t.unpin(p, false)
					return fmt.Errorf("xrtree: node %d PSL(%d): (%d,%d) not nested in predecessor ending %d",
						id, en.key, en.start, en.end, lastPSLEnd)
				}
			}
			if _, ok := heads[en.key]; !ok {
				heads[en.key] = headInfo{page: p, start: en.start, end: en.end}
			}
			if prev, dup := ck.stabbed[en.start]; dup {
				t.unpin(p, false)
				return fmt.Errorf("xrtree: element starting %d in two stab lists (heights %d and %d)",
					en.start, prev.height, height)
			}
			ck.stabbed[en.start] = stabHome{height: height, key: en.key, end: en.end}
			lastKey, lastStart = en.key, en.start
			lastPSLKey, lastPSLEnd = en.key, en.end
			haveLast = true
			ck.stabEntries++
		}
		next := stabNext(data)
		t.unpin(p, false)
		prevPage = p
		p = next
	}
	if stabTail(node) != prevPage {
		return fmt.Errorf("xrtree: node %d stab tail = %d, want %d", id, stabTail(node), prevPage)
	}

	// Directory checks per key.
	for i, k := range keys {
		h, ok := heads[k]
		ps, pe := keyPS(node, i), keyPE(node, i)
		psl := keyPSLPage(node, i)
		if !ok {
			if ps != 0 || pe != 0 || psl != pagefile.InvalidPage {
				return fmt.Errorf("xrtree: node %d key %d: empty PSL but directory (%d,%d,%d)",
					id, k, ps, pe, psl)
			}
			continue
		}
		if ps != h.start || pe != h.end {
			return fmt.Errorf("xrtree: node %d key %d: (ps,pe)=(%d,%d), head is (%d,%d)",
				id, k, ps, pe, h.start, h.end)
		}
		if psl != h.page {
			return fmt.Errorf("xrtree: node %d key %d: pslPage=%d, head on page %d", id, k, psl, h.page)
		}
		if !(h.start <= k && k <= h.end) {
			return fmt.Errorf("xrtree: node %d key %d does not stab its PSL head (%d,%d)",
				id, k, h.start, h.end)
		}
	}
	return nil
}

// checkPlacement cross-checks leaf flags against stab membership and
// verifies that every element sits in the *highest* stabbing node.
func (ck *checker) checkPlacement() error {
	for _, el := range ck.elements {
		home, inStab := ck.stabbed[el.start]
		if el.flagged != inStab {
			return fmt.Errorf("xrtree: element (%d,%d): flag=%v but stab membership=%v",
				el.start, el.end, el.flagged, inStab)
		}
		if inStab && home.end != el.end {
			return fmt.Errorf("xrtree: element (%d,%d): stab entry records end %d",
				el.start, el.end, home.end)
		}
	}
	// Every stab entry must correspond to a leaf element.
	if len(ck.stabbed) != ck.stabEntries {
		return fmt.Errorf("xrtree: %d distinct stabbed starts but %d stab entries",
			len(ck.stabbed), ck.stabEntries)
	}
	starts := make(map[uint32]bool, len(ck.elements))
	for _, el := range ck.elements {
		starts[el.start] = true
	}
	for s := range ck.stabbed {
		if !starts[s] {
			return fmt.Errorf("xrtree: stab entry for start %d has no leaf element", s)
		}
	}
	return nil
}
