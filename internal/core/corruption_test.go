package core

import (
	"math/rand"
	"strings"
	"testing"

	"xrtree/internal/bufferpool"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// These tests corrupt pages deliberately and assert CheckInvariants notices
// — proving the safety net used throughout the randomized tests is not
// vacuous.

// buildCorruptible returns a tree with stab entries plus its pool.
func buildCorruptible(t *testing.T) (*Tree, *bufferpool.Pool) {
	t.Helper()
	rng := rand.New(rand.NewSource(151))
	es := genNested(rng, 300, 12)
	pool := newPool(t, 256, 256)
	tr := buildTree(t, pool, es, Options{})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("pre-corruption invariants: %v", err)
	}
	entries, _ := tr.StabStats()
	if entries == 0 {
		t.Fatal("fixture has no stab entries")
	}
	return tr, pool
}

// mutatePage applies f to page id through the pool.
func mutatePage(t *testing.T, pool *bufferpool.Pool, id pagefile.PageID, f func(data []byte)) {
	t.Helper()
	data, err := pool.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	f(data)
	if err := pool.Unpin(id, true); err != nil {
		t.Fatal(err)
	}
}

// findPage locates the first page of the given type by walking the file.
func findPage(t *testing.T, tr *Tree, pool *bufferpool.Pool, pageType byte) pagefile.PageID {
	t.Helper()
	n := pool.File().NumPages()
	for id := 1; id < n; id++ {
		data, err := pool.Fetch(pagefile.PageID(id))
		if err != nil {
			continue
		}
		typ := data[0]
		pool.Unpin(pagefile.PageID(id), false)
		if typ == pageType && pagefile.PageID(id) != tr.Meta() {
			return pagefile.PageID(id)
		}
	}
	t.Fatalf("no page of type %d found", pageType)
	return pagefile.InvalidPage
}

func expectViolation(t *testing.T, tr *Tree, what string) {
	t.Helper()
	err := tr.CheckInvariants()
	if err == nil {
		t.Fatalf("%s: CheckInvariants accepted corrupted tree", what)
	}
	if !strings.Contains(err.Error(), "xrtree") {
		t.Errorf("%s: unexpected error text %q", what, err)
	}
}

func TestCheckerDetectsFlippedLeafFlag(t *testing.T) {
	tr, pool := buildCorruptible(t)
	leaf := findPage(t, tr, pool, leafType)
	mutatePage(t, pool, leaf, func(data []byte) {
		// Flip the InStabList flag of the first entry.
		_, fl := leafElem(data, 0)
		setLeafFlags(data, 0, fl^xmldoc.FlagInStabList)
	})
	expectViolation(t, tr, "flipped flag")
}

func TestCheckerDetectsCorruptedPSPE(t *testing.T) {
	tr, pool := buildCorruptible(t)
	// Find an internal node with a non-empty PSL and wreck its (ps, pe).
	n := pool.File().NumPages()
	for id := 1; id < n; id++ {
		pid := pagefile.PageID(id)
		if pid == tr.Meta() {
			continue
		}
		data, err := pool.Fetch(pid)
		if err != nil {
			continue
		}
		if data[0] != internalType {
			pool.Unpin(pid, false)
			continue
		}
		m := intCount(data)
		hit := false
		for i := 0; i < m; i++ {
			if keyPS(data, i) != 0 {
				setKeyPSPE(data, i, keyPS(data, i)+1, keyPE(data, i))
				hit = true
				break
			}
		}
		pool.Unpin(pid, true)
		if hit {
			expectViolation(t, tr, "corrupted ps")
			return
		}
	}
	t.Skip("no internal node with stab entries at this page size")
}

func TestCheckerDetectsUnsortedLeaf(t *testing.T) {
	tr, pool := buildCorruptible(t)
	leaf := findPage(t, tr, pool, leafType)
	mutatePage(t, pool, leaf, func(data []byte) {
		if leafCount(data) < 2 {
			t.Skip("leaf too small")
		}
		// Swap the first two entries.
		var a, b [xmldoc.EncodedSize]byte
		copy(a[:], leafEntry(data, 0))
		copy(b[:], leafEntry(data, 1))
		copy(leafEntry(data, 0), b[:])
		copy(leafEntry(data, 1), a[:])
	})
	expectViolation(t, tr, "unsorted leaf")
}

func TestCheckerDetectsStabKeyMismatch(t *testing.T) {
	tr, pool := buildCorruptible(t)
	stab := findPage(t, tr, pool, stabType)
	mutatePage(t, pool, stab, func(data []byte) {
		en := stabEntryAt(data, 0)
		en.key++ // no longer the primary stabbing key value
		putStabEntry(data, 0, en)
	})
	expectViolation(t, tr, "stab key mismatch")
}

func TestCheckerDetectsCountDrift(t *testing.T) {
	tr, pool := buildCorruptible(t)
	_ = pool
	tr.count.Add(1) // meta count no longer matches the leaves
	expectViolation(t, tr, "count drift")
	tr.count.Add(-1)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("restored tree should pass: %v", err)
	}
}
