package core

// Algorithm 2 (§4.2): deletion with stab-list maintenance. The element is
// removed from the stab list that holds it during the downward navigation
// (D1) and from its leaf (D2). Underflow triggers redistribution or merging
// (D22/D23, D32/D33); both change some node's key set, so the affected
// elements are re-homed: elements primarily stabbed by a removed or
// replaced key are reinserted into the highest node that still stabs them
// (possibly becoming plain leaf entries with InStabList = no), and elements
// newly stabbed by a key that moved up join that node's stab list.
//
// Concurrency: simple removals are one latched write on the affected
// page. Rebalancing latches the parent and both siblings top-to-bottom,
// left-to-right (the B-link order) and performs the whole rebalance —
// separator rewrite and stab re-homing included — inside that bracket. A
// merge frees the right page only after its latch is released; a reader
// that already resolved the freed id detects the recycled page by its
// type byte and reports ErrCorrupt rather than returning wrong data.

import (
	"fmt"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// Delete removes the element whose region starts at start. It returns
// ErrNotFound if no such element is indexed.
func (t *Tree) Delete(start uint32) (err error) {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	defer t.endStabMove()
	defer t.debugPinBalance()()
	// Resolve the full region first so the destructive descent cannot fail
	// halfway (the stab entry is keyed by the region, not just the start).
	e, err := t.lookupWriter(start, t.c)
	if err != nil {
		return err
	}
	commit := t.beginTx()
	defer commit(&err)
	found := false
	root, h := t.loadRoot()
	t.c.Emit(obs.EvIndexDescend, int64(h))
	if _, err := t.deleteFrom(root, h, e, &found); err != nil {
		return err
	}
	t.count.Add(-1)
	// D4: shrink the tree while the root is an internal node with one child.
	for h > 1 {
		data, err := t.fetch(root)
		if err != nil {
			return err
		}
		if intCount(data) > 0 {
			if err := t.unpin(root, false); err != nil {
				return err
			}
			break
		}
		onlyChild := intChild(data, 0)
		if stabHead(data) != pagefile.InvalidPage {
			t.unpin(root, false)
			return fmt.Errorf("%w: keyless root retains a stab list", ErrCorrupt)
		}
		if err := t.unpin(root, false); err != nil {
			return err
		}
		old := root
		root, h = onlyChild, h-1
		t.setRoot(root, h)
		if err := t.free(old); err != nil {
			return err
		}
	}
	if err := t.syncMeta(); err != nil {
		return err
	}
	return t.debugPostMutation()
}

// Lookup returns the indexed element whose start equals start, attributing
// costs to c (nil discards them). Safe for concurrent readers and a
// concurrent writer: it is a B-link descent over page copies.
func (t *Tree) Lookup(start uint32, c *metrics.Counters) (xmldoc.Element, error) {
	buf := getPageBuf(t.pool.File().PageSize())
	defer putPageBuf(buf)
	if err := t.descendToLeafCopy(start, c, buf); err != nil {
		return xmldoc.Element{}, err
	}
	pos := leafSearch(buf, start)
	if pos < leafCount(buf) && leafKey(buf, pos) == start {
		el, _ := leafElem(buf, pos)
		el.DocID = t.docID
		addScan(c, 1)
		return el, nil
	}
	return xmldoc.Element{}, fmt.Errorf("%w: start %d", ErrNotFound, start)
}

// lookupWriter is the writer-side point lookup Delete uses to resolve the
// full region before the destructive descent. The caller holds wlatch, so
// the pages are stable and the descent needs no latches or right moves.
func (t *Tree) lookupWriter(start uint32, c *metrics.Counters) (xmldoc.Element, error) {
	id, h := t.loadRoot()
	//xrvet:bounded root-to-leaf descent, at most h iterations
	for level := h; level > 1; level-- {
		data, err := t.fetch(id)
		if err != nil {
			return xmldoc.Element{}, err
		}
		addNode(c)
		child := intChild(data, intSearch(data, start))
		if err := t.unpin(id, false); err != nil {
			return xmldoc.Element{}, err
		}
		id = child
	}
	data, err := t.fetch(id)
	if err != nil {
		return xmldoc.Element{}, err
	}
	defer t.unpin(id, false)
	addLeaf(c)
	pos := leafSearch(data, start)
	if pos < leafCount(data) && leafKey(data, pos) == start {
		el, _ := leafElem(data, pos)
		el.DocID = t.docID
		addScan(c, 1)
		return el, nil
	}
	return xmldoc.Element{}, fmt.Errorf("%w: start %d", ErrNotFound, start)
}

func (t *Tree) leafMin() int { return t.leafCap / 2 }
func (t *Tree) intMin() int  { return t.intCap / 2 }

// deleteFrom removes e from the subtree rooted at id, reporting underflow.
func (t *Tree) deleteFrom(id pagefile.PageID, height int, e xmldoc.Element, foundInStab *bool) (bool, error) {
	data, err := t.fetch(id)
	if err != nil {
		return false, err
	}
	if height == 1 {
		n := leafCount(data)
		pos := leafSearch(data, e.Start)
		if pos >= n || leafKey(data, pos) != e.Start {
			t.unpin(id, false)
			return false, fmt.Errorf("%w: start %d vanished mid-delete", ErrCorrupt, e.Start)
		}
		t.pl.Lock(id)
		removeLeafEntry(data, pos, n)
		t.pl.Unlock(id)
		under := leafCount(data) < t.leafMin()
		return under, t.unpin(id, true)
	}

	// D1: drop e from this node's stab list if it lives here. The chain
	// mutation is covered by the node's exclusive latch.
	if !*foundInStab {
		t.pl.Lock(id)
		found, err := t.stabDeleteElement(data, e.Start, e.End)
		t.pl.Unlock(id)
		if err != nil {
			t.unpin(id, true)
			return false, err
		}
		if found {
			*foundInStab = true
		}
	}
	ci := intSearch(data, e.Start)
	child := intChild(data, ci)
	childUnder, err := t.deleteFrom(child, height-1, e, foundInStab)
	if err != nil {
		t.unpin(id, true)
		return false, err
	}
	if childUnder {
		if err := t.rebalanceChild(id, data, ci, height-1); err != nil {
			t.unpin(id, true)
			return false, err
		}
	}
	under := intCount(data) < t.intMin()
	return under, t.unpin(id, true)
}

// rebalanceChild restores minimum occupancy of the child at index ci of
// the pinned internal node (page parentID). The whole rebalance runs
// inside one latch bracket acquired parent, then left child, then right
// child, so a reader descending through the parent never sees a separator
// pointing at a half-rebalanced pair — or a stab list mid-migration.
func (t *Tree) rebalanceChild(parentID pagefile.PageID, parent []byte, ci int, childHeight int) error {
	m := intCount(parent)
	li := ci - 1
	if ci == 0 {
		if m == 0 {
			return nil // keyless root about to shrink; nothing to pair with
		}
		li = 0
	}
	leftID := intChild(parent, li)
	rightID := intChild(parent, li+1)
	left, err := t.fetch(leftID)
	if err != nil {
		return err
	}
	right, err := t.fetch(rightID)
	if err != nil {
		t.unpin(leftID, false)
		return err
	}

	// Every rebalance variant moves stab content between the parent, the
	// siblings, and plain leaf entries: a stab move in flight.
	t.beginStabMove()
	t.pl.Lock(parentID)
	t.pl.LockRight(leftID)
	t.pl.LockRight(rightID)
	var merged bool
	if childHeight == 1 {
		merged, err = t.rebalanceLeaves(parent, li, leftID, left, rightID, right)
	} else {
		merged, err = t.rebalanceInternals(parent, li, left, right)
	}
	t.pl.Unlock(rightID)
	t.pl.Unlock(leftID)
	t.pl.Unlock(parentID)

	if err != nil {
		t.unpin(leftID, true)
		t.unpin(rightID, true)
		return err
	}
	if err := t.unpin(leftID, true); err != nil {
		t.unpin(rightID, true)
		return err
	}
	if merged {
		// The right page leaves the tree; free it only after its latch is
		// released (a blocked reader re-checks the page type and errors).
		return t.discard(rightID)
	}
	return t.unpin(rightID, true)
}

// chooseSep picks a separator strictly greater than lastLeft and ≤
// firstRight, preferring firstRight−1 (§3.2) so the separator does not stab
// the right half's first element.
func (t *Tree) chooseSep(lastLeft, firstRight uint32) uint32 {
	if !t.opts.DisableKeyChoice && firstRight-1 > lastLeft {
		return firstRight - 1
	}
	return firstRight
}

// clearFlagInLeaf resets the InStabList flag of the entry with the given
// start in a pinned leaf; missing entries are a corruption error.
func clearFlagInLeaf(data []byte, start uint32) error {
	pos := leafSearch(data, start)
	if pos >= leafCount(data) || leafKey(data, pos) != start {
		return fmt.Errorf("%w: flag target %d not in leaf", ErrCorrupt, start)
	}
	_, fl := leafElem(data, pos)
	setLeafFlags(data, pos, fl&^xmldoc.FlagInStabList)
	return nil
}

// clearFlagInEitherLeaf clears the flag for start in whichever pinned leaf
// contains it.
func clearFlagInEitherLeaf(left, right []byte, start uint32) error {
	if leafCount(right) > 0 && start >= leafKey(right, 0) {
		return clearFlagInLeaf(right, start)
	}
	return clearFlagInLeaf(left, start)
}

// promoteNewlyStabbed moves leaf entries with a clear flag that are stabbed
// by sep into the pinned parent's stab list (the leaf-split StabSet'
// collection, reused when a separator value changes).
func (t *Tree) promoteNewlyStabbed(parent, leaf []byte, sep uint32) error {
	cnt := leafCount(leaf)
	for i := 0; i < cnt; i++ {
		el, fl := leafElem(leaf, i)
		if fl&xmldoc.FlagInStabList != 0 {
			continue
		}
		if el.Start <= sep && sep <= el.End {
			setLeafFlags(leaf, i, fl|xmldoc.FlagInStabList)
			el.DocID = t.docID
			if err := t.stabInsertElement(parent, el); err != nil {
				return err
			}
		}
	}
	return nil
}

// rebalanceLeaves redistributes or merges two sibling leaves under the
// parent, maintaining their B-link high keys (D22/D23). Called with all
// three page latches held; reports whether the right page was merged
// away. Pins stay with the caller.
func (t *Tree) rebalanceLeaves(parent []byte, li int, leftID pagefile.PageID, left []byte, rightID pagefile.PageID, right []byte) (bool, error) {
	ln, rn := leafCount(left), leafCount(right)

	if ln+rn <= t.leafCap {
		// D23: merge right into left and drop the separator from the
		// parent; left absorbs right's entries, chain link, and high key.
		copy(left[leafHeader+ln*xmldoc.EncodedSize:], right[leafHeader:leafHeader+rn*xmldoc.EncodedSize])
		setLeafCount(left, ln+rn)
		next := leafNext(right)
		setLeafNext(left, next)
		setLeafHigh(left, leafHigh(right))
		if next != pagefile.InvalidPage {
			nd, err := t.fetch(next)
			if err != nil {
				return false, err
			}
			t.pl.LockRight(next)
			setLeafPrev(nd, leftID)
			t.pl.Unlock(next)
			if err := t.unpin(next, true); err != nil {
				return false, err
			}
		}
		// Re-home the parent's elements primarily stabbed by the separator:
		// back into the parent under another key, or down to a plain leaf
		// entry (the children are leaves, so there is no lower stab list).
		ext, err := t.extractPSL(parent, li)
		if err != nil {
			return false, err
		}
		removeIntEntry(parent, li, intCount(parent))
		rejects, err := t.stabReinsertAll(parent, ext)
		if err != nil {
			return false, err
		}
		for _, se := range rejects {
			if err := clearFlagInLeaf(left, se.start); err != nil {
				return false, err
			}
		}
		return true, nil
	}

	// D22: redistribute one entry and replace the separator.
	min := t.leafMin()
	if ln < min {
		// Borrow the first entry of right.
		el, fl := leafElem(right, 0)
		removeLeafEntry(right, 0, rn)
		insertLeafEntry(left, ln, ln, el, fl)
	} else {
		// Borrow the last entry of left.
		el, fl := leafElem(left, ln-1)
		setLeafCount(left, ln-1)
		insertLeafEntry(right, 0, rn, el, fl)
	}
	newSep := t.chooseSep(leafKey(left, leafCount(left)-1), leafKey(right, 0))
	setLeafHigh(left, newSep)
	return false, t.replaceLeafSeparator(parent, li, newSep, left, right)
}

// replaceLeafSeparator changes parent key li to newSep between two pinned
// leaves, re-homing stab entries in both directions: parent elements only
// stabbed by the old separator fall back to plain leaf entries, and leaf
// elements newly stabbed by newSep rise into the parent's stab list.
func (t *Tree) replaceLeafSeparator(parent []byte, li int, newSep uint32, left, right []byte) error {
	ext, err := t.extractPSL(parent, li)
	if err != nil {
		return err
	}
	setIntKey(parent, li, newSep)
	// A separator that grew may now be the primary stabbing key of entries
	// in its successor's PSL.
	if err := t.rekeyStabbedPrefix(parent, li); err != nil {
		return err
	}
	rejects, err := t.stabReinsertAll(parent, ext)
	if err != nil {
		return err
	}
	for _, se := range rejects {
		if err := clearFlagInEitherLeaf(left, right, se.start); err != nil {
			return err
		}
	}
	if err := t.promoteNewlyStabbed(parent, left, newSep); err != nil {
		return err
	}
	return t.promoteNewlyStabbed(parent, right, newSep)
}

// rebalanceInternals redistributes or merges two sibling internal nodes
// through the parent's separator li, maintaining right links and high
// keys (D32/D33). Called with all three page latches held; reports
// whether the right page was merged away. Pins stay with the caller.
func (t *Tree) rebalanceInternals(parent []byte, li int, left, right []byte) (bool, error) {
	lm, rm := intCount(left), intCount(right)
	sep := intKey(parent, li)

	if lm+rm+1 <= t.intCap {
		// D33: merge left ++ sep ++ right; the separator is pulled down into
		// the merged node and the two stab chains are concatenated. The
		// merged node absorbs the right's link and high key.
		extP, err := t.extractPSL(parent, li)
		if err != nil {
			return false, err
		}
		if err := t.mergeStabChains(left, right); err != nil {
			return false, err
		}
		writeIntEntry(left, lm, intEntryMem{key: sep, child: intChild(right, 0), psl: pagefile.InvalidPage})
		for i := 0; i < rm; i++ {
			writeIntEntry(left, lm+1+i, readIntEntry(right, i))
		}
		setIntCount(left, lm+rm+1)
		setIntNext(left, intNext(right))
		setIntHigh(left, intHigh(right))
		if err := t.rekeyStabbedPrefix(left, lm); err != nil {
			return false, err
		}
		removeIntEntry(parent, li, intCount(parent))

		// Parent elements primarily stabbed by sep either stay in the
		// parent under another key or descend into the merged node, where
		// sep still stabs them.
		rejects, err := t.stabReinsertAll(parent, extP)
		if err != nil {
			return false, err
		}
		r2, err := t.stabReinsertAll(left, rejects)
		if err != nil {
			return false, err
		}
		if len(r2) > 0 {
			return false, fmt.Errorf("%w: %d elements lost in internal merge", ErrCorrupt, len(r2))
		}
		return true, nil
	}

	// D32: rotate one key through the parent.
	min := t.intMin()
	if lm < min {
		return false, t.rotateLeft(parent, li, left, right)
	}
	return false, t.rotateRight(parent, li, left, right)
}

// rotateLeft moves the right sibling's first key up to the parent and the
// old separator down into the left sibling. Stab entries follow their keys:
// PSL(old separator) leaves the parent (back into the parent under another
// key, or down into the left sibling where the separator now lives) and the
// right sibling's PSL(first key) rises into the parent.
func (t *Tree) rotateLeft(parent []byte, li int, left, right []byte) error {
	sep := intKey(parent, li)
	newSep := intKey(right, 0)

	extP, err := t.extractPSL(parent, li)
	if err != nil {
		return err
	}
	extR, err := t.extractPSL(right, 0)
	if err != nil {
		return err
	}

	lm := intCount(left)
	writeIntEntry(left, lm, intEntryMem{key: sep, child: intChild(right, 0), psl: pagefile.InvalidPage})
	setIntCount(left, lm+1)
	setIntChild(right, 0, intChild(right, 1))
	removeIntEntry(right, 0, intCount(right))
	setIntKey(parent, li, newSep)
	setIntHigh(left, newSep)
	if err := t.rekeyStabbedPrefix(parent, li); err != nil {
		return err
	}

	// The rotated-up key's elements join the parent.
	if rejects, err := t.stabReinsertAll(parent, extR); err != nil {
		return err
	} else if len(rejects) > 0 {
		return fmt.Errorf("%w: %d elements lost in rotateLeft", ErrCorrupt, len(rejects))
	}
	// The old separator's elements re-home in the parent or follow it down.
	rejects, err := t.stabReinsertAll(parent, extP)
	if err != nil {
		return err
	}
	r2, err := t.stabReinsertAll(left, rejects)
	if err != nil {
		return err
	}
	if len(r2) > 0 {
		return fmt.Errorf("%w: %d elements lost in rotateLeft", ErrCorrupt, len(r2))
	}
	return nil
}

// rotateRight moves the left sibling's last key up to the parent and the
// old separator down into the right sibling. Elements stabbed by the
// rotated-up key anywhere in the left sibling's stab list rise with it.
func (t *Tree) rotateRight(parent []byte, li int, left, right []byte) error {
	sep := intKey(parent, li)
	lm := intCount(left)
	newSep := intKey(left, lm-1)

	extP, err := t.extractPSL(parent, li)
	if err != nil {
		return err
	}
	// Everything in the left sibling stabbed by the rising key moves up:
	// PSL(newSep) entirely, plus the stabbed prefixes of earlier PSLs.
	extL, err := t.extractStabbedBy(left, newSep)
	if err != nil {
		return err
	}

	lastChild := intChild(left, lm)
	oldChild0 := intChild(right, 0)
	shiftIntEntriesRight(right)
	writeIntEntry(right, 0, intEntryMem{key: sep, child: oldChild0, psl: pagefile.InvalidPage})
	setIntChild(right, 0, lastChild)
	setIntCount(left, lm-1)
	setIntKey(parent, li, newSep)
	setIntHigh(left, newSep)
	if err := t.rekeyStabbedPrefix(right, 0); err != nil {
		return err
	}

	if rejects, err := t.stabReinsertAll(parent, extL); err != nil {
		return err
	} else if len(rejects) > 0 {
		return fmt.Errorf("%w: %d elements lost in rotateRight", ErrCorrupt, len(rejects))
	}
	rejects, err := t.stabReinsertAll(parent, extP)
	if err != nil {
		return err
	}
	r2, err := t.stabReinsertAll(right, rejects)
	if err != nil {
		return err
	}
	if len(r2) > 0 {
		return fmt.Errorf("%w: %d elements lost in rotateRight", ErrCorrupt, len(r2))
	}
	return nil
}

// shiftIntEntriesRight opens entry slot 0 of an internal node by moving all
// m entries one slot right and bumping the count. The caller fills slot 0
// and child 0.
func shiftIntEntriesRight(data []byte) {
	m := intCount(data)
	start := intHeader
	end := intHeader + m*intEntrySize
	copy(data[start+intEntrySize:end+intEntrySize], data[start:end])
	setIntCount(data, m+1)
}
