package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"xrtree/internal/bufferpool"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

func newPool(t *testing.T, pageSize, frames int) *bufferpool.Pool {
	t.Helper()
	f := pagefile.NewMem(pagefile.Options{PageSize: pageSize})
	t.Cleanup(func() { f.Close() })
	p, err := bufferpool.New(f, frames)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// genNested produces n strictly nested random elements (a random forest)
// with controllable nesting depth. Returned sorted by start.
func genNested(rng *rand.Rand, n, maxDepth int) []xmldoc.Element {
	var out []xmldoc.Element
	pos := uint32(0)
	next := func() uint32 { pos += uint32(rng.Intn(3) + 1); return pos }
	var build func(depth int)
	ref := uint32(0)
	build = func(depth int) {
		if len(out) >= n {
			return
		}
		start := next()
		level := uint16(depth + 1)
		idx := len(out)
		out = append(out, xmldoc.Element{DocID: 1, Level: level, Ref: ref})
		ref++
		kids := rng.Intn(4)
		if depth >= maxDepth {
			kids = 0
		}
		for i := 0; i < kids && len(out) < n; i++ {
			build(depth + 1)
		}
		out[idx].Start = start
		out[idx].End = next()
	}
	for len(out) < n {
		build(0)
	}
	xmldoc.SortByStart(out)
	return out
}

// oracle answers ancestor/descendant queries by brute force.
type oracle struct {
	els map[uint32]xmldoc.Element // by start
}

func newOracle() *oracle { return &oracle{els: make(map[uint32]xmldoc.Element)} }

func (o *oracle) insert(e xmldoc.Element) { o.els[e.Start] = e }
func (o *oracle) remove(start uint32)     { delete(o.els, start) }

func (o *oracle) ancestors(sd uint32, minStart uint32) []xmldoc.Element {
	var out []xmldoc.Element
	for _, e := range o.els {
		if e.Start < sd && sd < e.End && e.Start > minStart {
			out = append(out, e)
		}
	}
	xmldoc.SortByStart(out)
	return out
}

func (o *oracle) descendants(sa, ea uint32) []xmldoc.Element {
	var out []xmldoc.Element
	for _, e := range o.els {
		if sa < e.Start && e.Start < ea {
			out = append(out, e)
		}
	}
	xmldoc.SortByStart(out)
	return out
}

func (o *oracle) sorted() []xmldoc.Element {
	out := make([]xmldoc.Element, 0, len(o.els))
	for _, e := range o.els {
		out = append(out, e)
	}
	xmldoc.SortByStart(out)
	return out
}

func sameElements(t *testing.T, what string, got, want []xmldoc.Element) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d elements, want %d\ngot:  %v\nwant: %v", what, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Start != want[i].Start || got[i].End != want[i].End {
			t.Fatalf("%s: element %d = %v, want %v", what, i, got[i], want[i])
		}
	}
}

func buildTree(t *testing.T, pool *bufferpool.Pool, es []xmldoc.Element, opts Options) *Tree {
	t.Helper()
	tr, err := New(pool, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		if err := tr.Insert(e); err != nil {
			t.Fatalf("Insert(%v): %v", e, err)
		}
	}
	return tr
}

func TestInsertPaperFigure3(t *testing.T) {
	// The emp element set of the paper's Figure 1.
	emps := []xmldoc.Element{
		{DocID: 1, Start: 2, End: 15}, {DocID: 1, Start: 8, End: 12},
		{DocID: 1, Start: 10, End: 11}, {DocID: 1, Start: 20, End: 75},
		{DocID: 1, Start: 22, End: 35}, {DocID: 1, Start: 25, End: 30},
		{DocID: 1, Start: 40, End: 65}, {DocID: 1, Start: 45, End: 60},
		{DocID: 1, Start: 46, End: 47}, {DocID: 1, Start: 50, End: 55},
		{DocID: 1, Start: 80, End: 91}, {DocID: 1, Start: 85, End: 90},
	}
	pool := newPool(t, 256, 64)
	tr := buildTree(t, pool, emps, Options{})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tr.Len() != len(emps) {
		t.Errorf("Len = %d, want %d", tr.Len(), len(emps))
	}
	// FindAncestors of position 50 must yield the chain 20,75 / 40,65 / 45,60.
	anc, err := tr.FindAncestors(50, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []xmldoc.Element{{Start: 20, End: 75}, {Start: 40, End: 65}, {Start: 45, End: 60}}
	sameElements(t, "FindAncestors(50)", anc, want)

	// FindDescendants of (20, 75).
	des, err := tr.FindDescendants(20, 75, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantD := []xmldoc.Element{
		{Start: 22, End: 35}, {Start: 25, End: 30}, {Start: 40, End: 65},
		{Start: 45, End: 60}, {Start: 46, End: 47}, {Start: 50, End: 55},
	}
	sameElements(t, "FindDescendants(20,75)", des, wantD)
}

func TestInsertRandomizedInvariants(t *testing.T) {
	for _, pageSize := range []int{256, 512} {
		rng := rand.New(rand.NewSource(int64(pageSize) * 7))
		es := genNested(rng, 600, 12)
		pool := newPool(t, pageSize, 128)
		tr, err := New(pool, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(len(es))
		for i, pi := range perm {
			if err := tr.Insert(es[pi]); err != nil {
				t.Fatalf("pageSize %d: Insert %d (%v): %v", pageSize, i, es[pi], err)
			}
			if i%50 == 0 || i == len(perm)-1 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("pageSize %d: after insert %d: %v", pageSize, i, err)
				}
			}
		}
		if pool.PinnedCount() != 0 {
			t.Errorf("leaked pins: %d", pool.PinnedCount())
		}
	}
}

func TestFindAncestorsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	es := genNested(rng, 800, 15)
	pool := newPool(t, 256, 128)
	tr := buildTree(t, pool, es, Options{})
	o := newOracle()
	for _, e := range es {
		o.insert(e)
	}
	maxPos := es[len(es)-1].End + 5
	for trial := 0; trial < 300; trial++ {
		sd := uint32(rng.Intn(int(maxPos)) + 1)
		got, err := tr.FindAncestors(sd, 0, nil)
		if err != nil {
			t.Fatalf("FindAncestors(%d): %v", sd, err)
		}
		sameElements(t, "FindAncestors", got, o.ancestors(sd, 0))
	}
	// With minStart filtering.
	for trial := 0; trial < 100; trial++ {
		sd := uint32(rng.Intn(int(maxPos)) + 1)
		min := uint32(rng.Intn(int(sd) + 1))
		got, err := tr.FindAncestors(sd, min, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameElements(t, "FindAncestors(minStart)", got, o.ancestors(sd, min))
	}
}

func TestFindDescendantsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	es := genNested(rng, 700, 10)
	pool := newPool(t, 256, 128)
	tr := buildTree(t, pool, es, Options{})
	o := newOracle()
	for _, e := range es {
		o.insert(e)
	}
	for trial := 0; trial < 200; trial++ {
		e := es[rng.Intn(len(es))]
		got, err := tr.FindDescendants(e.Start, e.End, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameElements(t, "FindDescendants", got, o.descendants(e.Start, e.End))
	}
}

func TestDeleteRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	es := genNested(rng, 500, 12)
	pool := newPool(t, 256, 128)
	tr := buildTree(t, pool, es, Options{})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after build: %v", err)
	}
	perm := rng.Perm(len(es))
	for i, pi := range perm {
		if err := tr.Delete(es[pi].Start); err != nil {
			t.Fatalf("Delete %d (%v): %v", i, es[pi], err)
		}
		if i%25 == 0 || i == len(perm)-1 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after delete %d (%v): %v", i, es[pi], err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if se, sp := tr.StabStats(); se != 0 || sp != 0 {
		t.Errorf("stab stats after deleting all: %d entries, %d pages", se, sp)
	}
	if pool.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", pool.PinnedCount())
	}
}

func TestMixedOpsAgainstOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		universe := genNested(rng, 400, 14)
		pool := newPool(t, 256, 128)
		tr, err := New(pool, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		o := newOracle()
		present := make(map[int]bool)
		maxPos := universe[len(universe)-1].End + 5

		for op := 0; op < 1200; op++ {
			i := rng.Intn(len(universe))
			e := universe[i]
			if !present[i] && rng.Intn(5) != 0 {
				if err := tr.Insert(e); err != nil {
					t.Fatalf("seed %d op %d: Insert(%v): %v", seed, op, e, err)
				}
				o.insert(e)
				present[i] = true
			} else if present[i] {
				if err := tr.Delete(e.Start); err != nil {
					t.Fatalf("seed %d op %d: Delete(%v): %v", seed, op, e, err)
				}
				o.remove(e.Start)
				present[i] = false
			}
			if op%100 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
				sd := uint32(rng.Intn(int(maxPos)) + 1)
				got, err := tr.FindAncestors(sd, 0, nil)
				if err != nil {
					t.Fatal(err)
				}
				sameElements(t, "FindAncestors", got, o.ancestors(sd, 0))
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		// Full scan must match the oracle.
		it, err := tr.Scan(nil)
		if err != nil {
			t.Fatal(err)
		}
		var got []xmldoc.Element
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, e)
		}
		it.Close()
		sameElements(t, "final scan", got, o.sorted())
	}
}

func TestBulkLoadMatchesInsertBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	es := genNested(rng, 900, 12)
	pool := newPool(t, 512, 256)

	bulk, err := New(pool, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkLoad(es, 1.0); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("bulk invariants: %v", err)
	}
	if bulk.Len() != len(es) {
		t.Errorf("Len = %d, want %d", bulk.Len(), len(es))
	}

	o := newOracle()
	for _, e := range es {
		o.insert(e)
	}
	maxPos := es[len(es)-1].End + 5
	for trial := 0; trial < 200; trial++ {
		sd := uint32(rng.Intn(int(maxPos)) + 1)
		got, err := bulk.FindAncestors(sd, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameElements(t, "bulk FindAncestors", got, o.ancestors(sd, 0))
	}

	// A bulk-loaded tree must accept further updates.
	extra := xmldoc.Element{DocID: 1, Start: maxPos + 2, End: maxPos + 3}
	if err := bulk.Insert(extra); err != nil {
		t.Fatalf("Insert after BulkLoad: %v", err)
	}
	if err := bulk.Delete(es[0].Start); err != nil {
		t.Fatalf("Delete after BulkLoad: %v", err)
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("after updates: %v", err)
	}
}

func TestBulkLoadErrors(t *testing.T) {
	pool := newPool(t, 256, 64)
	tr, _ := New(pool, 1, Options{})
	unsorted := []xmldoc.Element{{DocID: 1, Start: 5, End: 6}, {DocID: 1, Start: 1, End: 2}}
	if err := tr.BulkLoad(unsorted, 1.0); err == nil {
		t.Error("BulkLoad accepted unsorted input")
	}
	tr2, _ := New(pool, 1, Options{})
	tr2.Insert(xmldoc.Element{DocID: 1, Start: 1, End: 2})
	if err := tr2.BulkLoad([]xmldoc.Element{{DocID: 1, Start: 5, End: 6}}, 1.0); err == nil {
		t.Error("BulkLoad into non-empty tree accepted")
	}
}

func TestDuplicateAndErrors(t *testing.T) {
	pool := newPool(t, 256, 64)
	tr, _ := New(pool, 1, Options{})
	e := xmldoc.Element{DocID: 1, Start: 5, End: 10}
	if err := tr.Insert(e); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(e); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate insert err = %v", err)
	}
	if err := tr.Insert(xmldoc.Element{DocID: 1, Start: 7, End: 7}); err == nil {
		t.Error("degenerate region accepted")
	}
	if err := tr.Insert(xmldoc.Element{DocID: 9, Start: 20, End: 21}); err == nil {
		t.Error("cross-DocID insert accepted")
	}
	if err := tr.Delete(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(missing) err = %v", err)
	}
	if _, err := tr.Lookup(999, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("Lookup(missing) err = %v", err)
	}
	got, err := tr.Lookup(5, nil)
	if err != nil || got.End != 10 {
		t.Errorf("Lookup(5) = %v, %v", got, err)
	}
}

func TestOpenReattaches(t *testing.T) {
	pool := newPool(t, 256, 64)
	rng := rand.New(rand.NewSource(31))
	es := genNested(rng, 200, 8)
	tr := buildTree(t, pool, es, Options{})
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(pool, tr.Meta(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if tr2.Len() != len(es) || tr2.Height() != tr.Height() {
		t.Errorf("reopened: len=%d h=%d, want %d/%d", tr2.Len(), tr2.Height(), len(es), tr.Height())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatalf("reopened invariants: %v", err)
	}
	se1, sp1 := tr.StabStats()
	se2, sp2 := tr2.StabStats()
	if se1 != se2 || sp1 != sp2 {
		t.Errorf("stab stats lost on reopen: (%d,%d) vs (%d,%d)", se1, sp1, se2, sp2)
	}
}

func TestSeekGEAndIterator(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	es := genNested(rng, 300, 8)
	pool := newPool(t, 256, 64)
	tr := buildTree(t, pool, es, Options{})
	for trial := 0; trial < 50; trial++ {
		k := uint32(rng.Intn(int(es[len(es)-1].Start) + 10))
		it, err := tr.SeekGE(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantIdx := sort.Search(len(es), func(i int) bool { return es[i].Start >= k })
		e, ok := it.Next()
		if wantIdx == len(es) {
			if ok {
				t.Fatalf("SeekGE(%d) returned %v, want end", k, e)
			}
		} else if !ok || e.Start != es[wantIdx].Start {
			t.Fatalf("SeekGE(%d) = %v,%v want %v", k, e, ok, es[wantIdx])
		}
		it.Close()
	}
	if pool.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", pool.PinnedCount())
	}
}

func TestFindParentAndChildren(t *testing.T) {
	// A small fixed tree: root (1,100) L1; children (2,40) and (50,90) L2;
	// grandchildren (5,10),(12,30) under (2,40) L3; (55,60) under (50,90).
	es := []xmldoc.Element{
		{DocID: 1, Start: 1, End: 100, Level: 1},
		{DocID: 1, Start: 2, End: 40, Level: 2},
		{DocID: 1, Start: 5, End: 10, Level: 3},
		{DocID: 1, Start: 12, End: 30, Level: 3},
		{DocID: 1, Start: 50, End: 90, Level: 2},
		{DocID: 1, Start: 55, End: 60, Level: 3},
	}
	pool := newPool(t, 256, 64)
	tr := buildTree(t, pool, es, Options{})

	p, ok, err := tr.FindParent(5, 3, nil)
	if err != nil || !ok || p.Start != 2 {
		t.Errorf("FindParent(5) = %v,%v,%v want (2,40)", p, ok, err)
	}
	p, ok, err = tr.FindParent(2, 2, nil)
	if err != nil || !ok || p.Start != 1 {
		t.Errorf("FindParent(2) = %v,%v,%v want (1,100)", p, ok, err)
	}
	_, ok, err = tr.FindParent(1, 1, nil)
	if err != nil || ok {
		t.Errorf("FindParent(root) found a parent")
	}

	kids, err := tr.FindChildren(1, 100, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameElements(t, "FindChildren(root)", kids,
		[]xmldoc.Element{{Start: 2, End: 40}, {Start: 50, End: 90}})
	kids, err = tr.FindChildren(2, 40, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameElements(t, "FindChildren(2,40)", kids,
		[]xmldoc.Element{{Start: 5, End: 10}, {Start: 12, End: 30}})
}

func TestCountersAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	es := genNested(rng, 500, 10)
	pool := newPool(t, 256, 128)
	tr := buildTree(t, pool, es, Options{})
	var c metrics.Counters
	if _, err := tr.FindAncestors(es[len(es)/2].Start+1, 0, &c); err != nil {
		t.Fatal(err)
	}
	if c.IndexNodeReads == 0 || c.LeafReads == 0 {
		t.Errorf("FindAncestors counters: %+v", c)
	}
	if c.ElementsScanned == 0 {
		t.Error("FindAncestors scanned no elements")
	}
}

func TestStabStatsGrowWithNesting(t *testing.T) {
	// Deeply nested data must place many elements in stab lists; flat data
	// (siblings only) should place almost none (§3.3).
	pool := newPool(t, 256, 256)
	flat := make([]xmldoc.Element, 400)
	for i := range flat {
		flat[i] = xmldoc.Element{DocID: 1, Start: uint32(3*i + 1), End: uint32(3*i + 2), Level: 1}
	}
	trFlat := buildTree(t, pool, flat, Options{})
	flatEntries, _ := trFlat.StabStats()
	if flatEntries != 0 {
		t.Errorf("flat data has %d stab entries, want 0", flatEntries)
	}

	rng := rand.New(rand.NewSource(43))
	nested := genNested(rng, 400, 20)
	trNested := buildTree(t, newPool(t, 256, 256), nested, Options{})
	nestedEntries, nestedPages := trNested.StabStats()
	if nestedEntries == 0 || nestedPages == 0 {
		t.Errorf("nested data has %d stab entries on %d pages, want > 0", nestedEntries, nestedPages)
	}
}

func TestKeyChoiceAblation(t *testing.T) {
	// With the §3.2 separator optimization off, separators coincide with
	// element starts more often, so at least as many elements are stabbed.
	rng := rand.New(rand.NewSource(47))
	es := genNested(rng, 600, 6)
	onTree := buildTree(t, newPool(t, 256, 256), es, Options{})
	offTree := buildTree(t, newPool(t, 256, 256), es, Options{DisableKeyChoice: true})
	onEntries, _ := onTree.StabStats()
	offEntries, _ := offTree.StabStats()
	if onEntries > offEntries {
		t.Errorf("key choice increased stab entries: on=%d off=%d", onEntries, offEntries)
	}
	if err := offTree.CheckInvariants(); err != nil {
		t.Fatalf("DisableKeyChoice invariants: %v", err)
	}
}

func TestAscendingAndDescendingInserts(t *testing.T) {
	for name, reverse := range map[string]bool{"ascending": false, "descending": true} {
		rng := rand.New(rand.NewSource(53))
		es := genNested(rng, 400, 10)
		order := make([]xmldoc.Element, len(es))
		copy(order, es)
		if reverse {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		pool := newPool(t, 256, 128)
		tr, _ := New(pool, 1, Options{})
		for i, e := range order {
			if err := tr.Insert(e); err != nil {
				t.Fatalf("%s insert %d: %v", name, i, err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBulkLoadPartialFill(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	es := genNested(rng, 600, 10)
	for _, fill := range []float64{0.5, 0.7, 1.0} {
		pool := newPool(t, 512, 256)
		tr, err := New(pool, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.BulkLoad(es, fill); err != nil {
			t.Fatalf("fill %.1f: %v", fill, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("fill %.1f invariants: %v", fill, err)
		}
		o := newOracle()
		for _, e := range es {
			o.insert(e)
		}
		for i := 0; i < 50; i++ {
			sd := es[rng.Intn(len(es))].Start + 1
			got, err := tr.FindAncestors(sd, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(o.ancestors(sd, 0)) {
				t.Fatalf("fill %.1f: FindAncestors(%d) mismatch", fill, sd)
			}
		}
	}
}
