package core

import (
	"math/rand"
	"testing"

	"xrtree/internal/xmldoc"
)

// TestDeleteOrderPatterns deletes in adversarial orders — ascending
// (hammers leftmost-leaf underflow and rotate-left), descending (rightmost
// and rotate-right), and inside-out — checking every invariant frequently.
func TestDeleteOrderPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	base := genNested(rng, 600, 14)

	order := func(name string) []int {
		idx := make([]int, len(base))
		for i := range idx {
			idx[i] = i
		}
		switch name {
		case "descending":
			for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
				idx[i], idx[j] = idx[j], idx[i]
			}
		case "inside-out":
			out := make([]int, 0, len(idx))
			lo, hi := len(idx)/2, len(idx)/2+1
			for lo >= 0 || hi < len(idx) {
				if lo >= 0 {
					out = append(out, lo)
					lo--
				}
				if hi < len(idx) {
					out = append(out, hi)
					hi++
				}
			}
			idx = out
		}
		return idx
	}

	for _, pattern := range []string{"ascending", "descending", "inside-out"} {
		pattern := pattern
		t.Run(pattern, func(t *testing.T) {
			pool := newPool(t, 256, 256)
			tr := buildTree(t, pool, base, Options{})
			for i, bi := range order(pattern) {
				if err := tr.Delete(base[bi].Start); err != nil {
					t.Fatalf("%s delete %d (%v): %v", pattern, i, base[bi], err)
				}
				if i%10 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("%s after delete %d: %v", pattern, i, err)
					}
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("%s: %d elements left", pattern, tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%s final: %v", pattern, err)
			}
		})
	}
}

// TestDeleteRebuildCycles alternates bulk deletion and reinsertion so the
// tree repeatedly shrinks through merges and regrows through splits, with
// stab entries re-homed both ways.
func TestDeleteRebuildCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	base := genNested(rng, 500, 16)
	pool := newPool(t, 256, 256)
	tr := buildTree(t, pool, base, Options{})
	for cycle := 0; cycle < 4; cycle++ {
		perm := rng.Perm(len(base))
		kill := perm[:len(base)*3/4]
		for _, bi := range kill {
			if err := tr.Delete(base[bi].Start); err != nil {
				t.Fatalf("cycle %d delete %v: %v", cycle, base[bi], err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d after deletes: %v", cycle, err)
		}
		for _, bi := range kill {
			if err := tr.Insert(base[bi]); err != nil {
				t.Fatalf("cycle %d insert %v: %v", cycle, base[bi], err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d after reinserts: %v", cycle, err)
		}
	}
	// The final tree answers like the oracle.
	o := newOracle()
	for _, e := range base {
		o.insert(e)
	}
	maxPos := base[len(base)-1].End + 3
	for i := 0; i < 100; i++ {
		sd := uint32(rng.Intn(int(maxPos)) + 1)
		got, err := tr.FindAncestors(sd, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := o.ancestors(sd, 0)
		if len(got) != len(want) {
			t.Fatalf("FindAncestors(%d) = %d, want %d", sd, len(got), len(want))
		}
	}
}

// TestDeletePreservesQueriesUnderChurn interleaves deletes with queries,
// validating results against an incrementally maintained oracle.
func TestDeletePreservesQueriesUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	base := genNested(rng, 400, 12)
	pool := newPool(t, 512, 256)
	tr := buildTree(t, pool, base, Options{})
	o := newOracle()
	for _, e := range base {
		o.insert(e)
	}
	maxPos := base[len(base)-1].End + 3
	perm := rng.Perm(len(base))
	for i, bi := range perm {
		if err := tr.Delete(base[bi].Start); err != nil {
			t.Fatal(err)
		}
		o.remove(base[bi].Start)
		if i%7 != 0 {
			continue
		}
		sd := uint32(rng.Intn(int(maxPos)) + 1)
		got, err := tr.FindAncestors(sd, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(o.ancestors(sd, 0)) {
			t.Fatalf("after %d deletes: FindAncestors(%d) = %d, want %d",
				i+1, sd, len(got), len(o.ancestors(sd, 0)))
		}
		e := base[perm[(i+13)%len(perm)]]
		gd, err := tr.FindDescendants(e.Start, e.End, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(gd) != len(o.descendants(e.Start, e.End)) {
			t.Fatalf("after %d deletes: FindDescendants(%v) mismatch", i+1, e)
		}
	}
}

// TestDeleteWithConcentricRegions exercises separator replacement with stab
// re-homing: deeply overlapping regions whose stab entries must move
// between parent and leaves as separators change.
func TestDeleteWithConcentricRegions(t *testing.T) {
	var es []xmldoc.Element
	// 150 concentric rings + 150 disjoint leaves interleaved in key space.
	for i := 0; i < 150; i++ {
		es = append(es, xmldoc.Element{
			DocID: 1, Start: uint32(i + 1), End: uint32(10000 - i), Level: uint16(i + 1),
		})
	}
	for i := 0; i < 150; i++ {
		es = append(es, xmldoc.Element{
			DocID: 1, Start: uint32(200 + 3*i), End: uint32(200 + 3*i + 1), Level: 151,
		})
	}
	xmldoc.SortByStart(es)
	pool := newPool(t, 256, 256)
	tr := buildTree(t, pool, es, Options{})
	rng := rand.New(rand.NewSource(109))
	perm := rng.Perm(len(es))
	for i, pi := range perm {
		if err := tr.Delete(es[pi].Start); err != nil {
			t.Fatalf("delete %d (%v): %v", i, es[pi], err)
		}
		if i%5 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after delete %d (%v): %v", i, es[pi], err)
			}
		}
	}
}
