package core

// Bulk loading builds the B+-tree backbone bottom-up at a chosen fill
// factor — the representation the read-only join experiments measure — and
// then homes every element in the stab list of the highest stabbing node,
// exactly the state repeated Insert calls would converge to.

import (
	"fmt"

	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// BulkLoad builds the tree from a start-sorted element slice. The tree must
// be empty. fill is the target page occupancy in (0,1]; 0 means fully
// packed.
func (t *Tree) BulkLoad(es []xmldoc.Element, fill float64) error {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	defer t.endStabMove()
	defer t.debugPinBalance()()
	// Bulk construction is unlogged: its durability point is the store's
	// explicit save. The bracket keeps fuzzy WAL checkpoints from reading
	// half-built frames.
	t.pool.BeginUnlogged()
	defer t.pool.EndUnlogged()
	if n := t.count.Load(); n != 0 {
		return fmt.Errorf("xrtree: BulkLoad into non-empty tree (%d elements)", n)
	}
	if len(es) == 0 {
		return nil
	}
	if fill <= 0 || fill > 1 {
		fill = 1.0
	}
	perLeaf := int(float64(t.leafCap) * fill)
	if perLeaf < 1 {
		perLeaf = 1
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].Start >= es[i].Start {
			return fmt.Errorf("xrtree: BulkLoad input not sorted at %d", i)
		}
		if es[i].DocID != t.docID {
			return fmt.Errorf("xrtree: BulkLoad element %d has DocID %d, tree is %d", i, es[i].DocID, t.docID)
		}
	}

	// Leaf level. Separators between adjacent leaves use the §3.2 key
	// choice so they stab as few elements as possible. The existing (empty)
	// root page is reused as the first leaf; that page — and everything the
	// chain reaches from it — is visible to concurrent readers, so
	// mutations of already-linked pages take their exclusive latch; a fresh
	// page is filled unlatched and only then linked.
	root, _ := t.loadRoot()
	type levelEntry struct {
		sep uint32 // separator to the left of this child (unused for [0])
		id  pagefile.PageID
	}
	var level []levelEntry
	var prevID pagefile.PageID
	var prevData []byte
	var prevLast uint32
	for off := 0; off < len(es); off += perLeaf {
		n := len(es) - off
		if n > perLeaf {
			n = perLeaf
		}
		var id pagefile.PageID
		var data []byte
		var err error
		if off == 0 {
			id = root
			data, err = t.fetch(id)
		} else {
			id, data, err = t.fetchNew()
		}
		if err != nil {
			return err
		}
		fillPage := func() {
			initLeaf(data)
			for i := 0; i < n; i++ {
				es[off+i].Encode(leafEntry(data, i), 0)
			}
			setLeafCount(data, n)
		}
		sep := uint32(0)
		if off == 0 {
			t.pl.Lock(id)
			fillPage()
			t.pl.Unlock(id)
		} else {
			fillPage()
			sep = t.chooseSep(prevLast, es[off].Start)
			setLeafPrev(data, prevID)
		}
		if prevData != nil {
			t.pl.Lock(prevID)
			setLeafNext(prevData, id)
			setLeafHigh(prevData, sep)
			t.pl.Unlock(prevID)
			if err := t.unpin(prevID, true); err != nil {
				return err
			}
		}
		level = append(level, levelEntry{sep: sep, id: id})
		prevID, prevData = id, data
		prevLast = es[off+n-1].Start
	}
	if err := t.unpin(prevID, true); err != nil {
		return err
	}

	// Internal levels. These pages are unreachable until setRoot publishes
	// the top one, so they are built unlatched; the previous node stays
	// pinned so its right link and high key can be set once its right
	// neighbor exists.
	height := 1
	perInt := int(float64(t.intCap) * fill)
	if perInt < 2 {
		perInt = 2
	}
	for len(level) > 1 {
		var next []levelEntry
		prevID = pagefile.InvalidPage
		prevData = nil
		for off := 0; off < len(level); {
			n := len(level) - off
			if n > perInt+1 {
				n = perInt + 1
			}
			if rem := len(level) - off - n; rem == 1 {
				n--
			}
			id, data, err := t.fetchNew()
			if err != nil {
				return err
			}
			initInternal(data)
			setIntChild(data, 0, level[off].id)
			for i := 1; i < n; i++ {
				writeIntEntry(data, i-1, intEntryMem{
					key:   level[off+i].sep,
					child: level[off+i].id,
					psl:   pagefile.InvalidPage,
				})
			}
			setIntCount(data, n-1)
			if prevData != nil {
				setIntNext(prevData, id)
				setIntHigh(prevData, level[off].sep)
				if err := t.unpin(prevID, true); err != nil {
					return err
				}
			}
			next = append(next, levelEntry{sep: level[off].sep, id: id})
			prevID, prevData = id, data
			off += n
		}
		if err := t.unpin(prevID, true); err != nil {
			return err
		}
		level = next
		height++
	}
	t.setRoot(level[0].id, height)
	t.count.Store(int64(len(es)))

	// Home every element: walk the start path from the root and stop at the
	// first (highest) node with a stabbing key. The tree is published, so
	// homing — flag raising plus chain inserts — is one long stab move.
	t.beginStabMove()
	for _, e := range es {
		if err := t.homeElement(e); err != nil {
			return err
		}
	}
	if err := t.syncMeta(); err != nil {
		return err
	}
	return t.debugPostMutation()
}

// homeElement inserts e into the stab list of the highest stabbing node on
// its start path, setting the leaf InStabList flag when it does. The leaf
// entry for e must already exist. The tree is already published, so every
// mutation happens under the page's exclusive latch.
func (t *Tree) homeElement(e xmldoc.Element) error {
	id, h := t.loadRoot()
	homed := false
	for level := h; level > 1; level-- {
		data, err := t.fetch(id)
		if err != nil {
			return err
		}
		dirty := false
		if !homed && primaryKeyIndex(data, e.Start, e.End) >= 0 {
			t.pl.Lock(id)
			err := t.stabInsertElement(data, e)
			t.pl.Unlock(id)
			if err != nil {
				t.unpin(id, true)
				return err
			}
			homed = true
			dirty = true
		}
		child := intChild(data, intSearch(data, e.Start))
		if err := t.unpin(id, dirty); err != nil {
			return err
		}
		id = child
	}
	if !homed {
		return nil
	}
	data, err := t.fetch(id)
	if err != nil {
		return err
	}
	pos := leafSearch(data, e.Start)
	if pos >= leafCount(data) || leafKey(data, pos) != e.Start {
		t.unpin(id, false)
		return fmt.Errorf("%w: bulk-loaded element %v missing from leaf", ErrCorrupt, e)
	}
	t.pl.Lock(id)
	_, fl := leafElem(data, pos)
	setLeafFlags(data, pos, fl|xmldoc.FlagInStabList)
	t.pl.Unlock(id)
	return t.unpin(id, true)
}
