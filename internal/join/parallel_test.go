package join

import (
	"errors"
	"testing"
	"time"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/xmldoc"
)

// synthTask emits `count` pairs tagged with the task's doc id and counts
// one scan per pair; odd tasks sleep briefly so completion order scrambles.
func synthTask(doc uint32, count int) Task {
	return Task{DocID: doc, Run: func(emit EmitFunc, c *metrics.Counters) error {
		if doc%2 == 1 {
			time.Sleep(time.Duration(doc%5) * time.Millisecond)
		}
		for i := 0; i < count; i++ {
			a := xmldoc.Element{DocID: doc, Start: uint32(i + 1), End: uint32(i + 100)}
			d := xmldoc.Element{DocID: doc, Start: uint32(i + 2), End: uint32(i + 3)}
			emit(a, d)
			if c != nil {
				c.ElementsScanned++
				c.OutputPairs++
			}
		}
		return nil
	}}
}

func TestParallelPreservesTaskOrder(t *testing.T) {
	const tasks, perTask = 12, 50
	ts := make([]Task, tasks)
	for i := range ts {
		ts[i] = synthTask(uint32(i+1), perTask)
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		var pairs []Pair
		var c metrics.Counters
		if err := Parallel(ts, Options{Workers: workers}, Collect(&pairs), &c); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(pairs) != tasks*perTask {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(pairs), tasks*perTask)
		}
		for i, p := range pairs {
			wantDoc := uint32(i/perTask + 1)
			wantStart := uint32(i%perTask + 1)
			if p.A.DocID != wantDoc || p.A.Start != wantStart {
				t.Fatalf("workers=%d: pair %d = doc %d start %d, want doc %d start %d",
					workers, i, p.A.DocID, p.A.Start, wantDoc, wantStart)
			}
		}
		if c.ElementsScanned != tasks*perTask || c.OutputPairs != tasks*perTask {
			t.Fatalf("workers=%d: merged counters scanned=%d pairs=%d, want %d",
				workers, c.ElementsScanned, c.OutputPairs, tasks*perTask)
		}
		if c.Elapsed <= 0 {
			t.Fatalf("workers=%d: Elapsed not recorded", workers)
		}
	}
}

func TestParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	ts := []Task{
		synthTask(1, 5),
		{DocID: 2, Run: func(emit EmitFunc, c *metrics.Counters) error { return boom }},
		synthTask(3, 5),
	}
	if err := Parallel(ts, Options{Workers: 3}, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := Parallel(ts, Options{Workers: 1}, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("sequential err = %v, want boom", err)
	}
}

func TestParallelSharedTracer(t *testing.T) {
	const tasks, perTask = 8, 30
	ts := make([]Task, tasks)
	for i := range ts {
		doc := uint32(i + 1)
		ts[i] = Task{DocID: doc, Run: func(emit EmitFunc, c *metrics.Counters) error {
			for j := 0; j < perTask; j++ {
				c.Emit(obs.EvOutput, 1)
			}
			return nil
		}}
	}
	col := obs.NewCollector()
	c := metrics.Counters{Tracer: col}
	if err := Parallel(ts, Options{Workers: 4}, nil, &c); err != nil {
		t.Fatal(err)
	}
	if got := col.Count(obs.EvOutput); got != tasks*perTask {
		t.Fatalf("collector saw %d EvOutput events, want %d", got, tasks*perTask)
	}
}

func TestParallelEmptyTasks(t *testing.T) {
	var c metrics.Counters
	if err := Parallel(nil, Options{Workers: 4}, nil, &c); err != nil {
		t.Fatal(err)
	}
}
