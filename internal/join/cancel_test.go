package join

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"xrtree/internal/metrics"
	"xrtree/internal/xmldoc"
)

// cancelCase runs one algorithm over shared fixtures so every algorithm's
// cancellation path is exercised identically.
type cancelCase struct {
	name string
	run  func(a, d fixture, emit EmitFunc, c *metrics.Counters) error
}

func cancelCases(t *testing.T) []cancelCase {
	t.Helper()
	return []cancelCase{
		{"noindex", func(a, d fixture, emit EmitFunc, c *metrics.Counters) error {
			return StackTreeDesc(AncestorDescendant, a.list, d.list, emit, c)
		}},
		{"mpmgjn", func(a, d fixture, emit EmitFunc, c *metrics.Counters) error {
			return MPMGJN(AncestorDescendant, a.list, d.list, emit, c)
		}},
		{"bplus", func(a, d fixture, emit EmitFunc, c *metrics.Counters) error {
			return BPlus(AncestorDescendant, a.bt, d.bt, emit, c)
		}},
		{"xr", func(a, d fixture, emit EmitFunc, c *metrics.Counters) error {
			return XRStack(AncestorDescendant, a.xr, d.xr, emit, c)
		}},
	}
}

// TestCancelMidJoin cancels the context from inside the emit callback
// after a fixed number of pairs: every algorithm must stop promptly at
// its next poll point, return context.Canceled, and release every page
// pin on the way out.
func TestCancelMidJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	as, ds := genDoc(rng, 2000, 4000, 10)
	pool := newPool(t, 1024, 256)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)

	// A full run for reference: the workload must be large enough that
	// cancellation really interrupts it.
	var full int64
	if err := StackTreeDesc(AncestorDescendant, fa.list, fd.list, func(xmldoc.Element, xmldoc.Element) { full++ }, nil); err != nil {
		t.Fatal(err)
	}
	const cancelAfter = 64
	if full < 4*cancelAfter {
		t.Fatalf("fixture too small: only %d pairs", full)
	}

	for _, tc := range cancelCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			c := &metrics.Counters{Ctx: ctx}
			var emitted int64
			emit := func(xmldoc.Element, xmldoc.Element) {
				if emitted++; emitted == cancelAfter {
					cancel()
				}
			}
			err := tc.run(fa, fd, emit, c)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// Prompt: the join may run to at most the next poll point
			// (a page boundary or one poller stride) past the cancel.
			if emitted >= full {
				t.Errorf("join ran to completion (%d pairs) despite cancel at %d", emitted, cancelAfter)
			}
			if n := pool.PinnedCount(); n != 0 {
				t.Errorf("pinned pages after cancel = %d, want 0", n)
			}
		})
	}
}

// TestCancelMidJoinBPlusSP covers the sibling-pointer variant, which
// needs the sibling table built from the raw elements.
func TestCancelMidJoinBPlusSP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	as, ds := genDoc(rng, 2000, 4000, 10)
	pool := newPool(t, 1024, 256)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)
	src := SiblingListSource{L: fa.list.L, Sib: BuildSiblingTable(as)}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := &metrics.Counters{Ctx: ctx}
	var emitted int64
	err := BPlusSP(AncestorDescendant, src, fd.bt, func(xmldoc.Element, xmldoc.Element) {
		if emitted++; emitted == 64 {
			cancel()
		}
	}, c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Errorf("pinned pages after cancel = %d, want 0", n)
	}
}

// TestCancelBeforeJoin runs each algorithm with an already-canceled
// context: the join must fail at its first poll point, emitting at most
// a stride of pairs.
func TestCancelBeforeJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	as, ds := genDoc(rng, 1000, 2000, 8)
	pool := newPool(t, 1024, 256)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the join starts
	for _, tc := range cancelCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			c := &metrics.Counters{Ctx: ctx}
			err := tc.run(fa, fd, func(xmldoc.Element, xmldoc.Element) {}, c)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want ctx error", err)
			}
			if n := pool.PinnedCount(); n != 0 {
				t.Errorf("pinned pages = %d, want 0", n)
			}
		})
	}
}

// TestCancelParallelJoin cancels a multi-document parallel join from the
// merged emit stream: in-flight partitions stop at their next poll point,
// undispatched partitions are skipped, and no pins leak.
func TestCancelParallelJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := newPool(t, 1024, 512)
	var tasks []Task
	for docID := uint32(1); docID <= 6; docID++ {
		as, ds := genDocID(rng, docID, 800, 1600, 8)
		fa := buildFixture(t, pool, as)
		fd := buildFixture(t, pool, ds)
		tasks = append(tasks, Task{
			DocID: docID,
			Run: func(emit EmitFunc, jc *metrics.Counters) error {
				return StackTreeDesc(AncestorDescendant, fa.list, fd.list, emit, jc)
			},
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st := &metrics.Counters{Ctx: ctx}
	var emitted int64
	err := Parallel(tasks, Options{Workers: 3}, func(xmldoc.Element, xmldoc.Element) {
		if emitted++; emitted == 100 {
			cancel()
		}
	}, st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Errorf("pinned pages after cancel = %d, want 0", n)
	}
}

// genDocID is genDoc for a chosen DocID (parallel tasks partition by it).
func genDocID(rng *rand.Rand, docID uint32, nA, nD, maxDepth int) (as, ds []xmldoc.Element) {
	as, ds = genDoc(rng, nA, nD, maxDepth)
	for i := range as {
		as[i].DocID = docID
	}
	for i := range ds {
		ds[i].DocID = docID
	}
	return as, ds
}
