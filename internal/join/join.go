// Package join implements the structural-join algorithms the paper
// evaluates against each other (§2.2, §5.2, §6):
//
//   - StackTreeDesc — the no-index baseline, Stack-Tree-Desc of Srivastava
//     et al. [ICDE 2002]: one sequential merge of both lists with an
//     in-memory stack ("no-index"/NIDX in the tables).
//   - MPMGJN — the multi-predicate merge join of Zhang et al. [SIGMOD
//     2001], an extra baseline that rescans the descendant list and shows
//     the redundant work stack-based algorithms remove.
//   - BPlus — Anc_Des_B+ of Chien et al. [VLDB 2002]: B+-trees on both
//     sets; skips descendants with range queries and ancestors by jumping
//     past a non-matching ancestor's subtree ("B+" in the tables).
//   - XRStack — Algorithm 6: XR-trees on both sets; skips descendants like
//     B+ and skips directly to the ancestors of the current descendant
//     with FindAncestors ("XR-stack" in the tables).
//
// A join takes two Sources — the access paths of one element set — and an
// emit callback; every algorithm produces exactly the pairs (a, d) with
// a.start < d.start < a.end (plus the level condition in parent-child
// mode), differing only in how much work it takes to find them. All costs
// flow into the provided metrics.Counters.
package join

import (
	"xrtree/internal/btree"
	"xrtree/internal/core"
	"xrtree/internal/elemlist"
	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/xmldoc"
)

// Mode selects the structural relationship being joined.
type Mode int

const (
	// AncestorDescendant reports all (ancestor, descendant) pairs ("//").
	AncestorDescendant Mode = iota
	// ParentChild restricts to parent-child pairs ("/"): level difference 1.
	ParentChild
)

// EmitFunc receives one result pair.
type EmitFunc func(a, d xmldoc.Element)

// Pair is a materialized join result, used by tests and examples.
type Pair struct {
	A, D xmldoc.Element
}

// Collect returns an EmitFunc that appends pairs to *dst.
func Collect(dst *[]Pair) EmitFunc {
	return func(a, d xmldoc.Element) { *dst = append(*dst, Pair{A: a, D: d}) }
}

// Iterator is the sequential cursor every source provides. Next consumes an
// element (which counts as one element scanned, the paper's Table 2/3
// metric); Peek examines without consuming — cursor positioning after an
// index seek is index probing, not an element scan, which is how the paper
// accounts the indexed algorithms.
type Iterator interface {
	Next() (xmldoc.Element, bool)
	Peek() (xmldoc.Element, bool)
	Err() error
	Close() error
}

// Source is a start-sorted element set reachable by sequential scan.
type Source interface {
	Scan(c *metrics.Counters) (Iterator, error)
	Len() int
}

// Seeker is a Source with an index on start positions (B+-tree or XR-tree):
// SeekGE is the range-query primitive used to skip elements.
type Seeker interface {
	Source
	SeekGE(start uint32, c *metrics.Counters) (Iterator, error)
}

// AncestorSeeker is a Seeker that can also retrieve all ancestors of a
// position — the XR-tree's FindAncestors, in append form so a join loop
// can reuse one scratch buffer across probes.
type AncestorSeeker interface {
	Seeker
	AppendAncestors(dst []xmldoc.Element, sd, minStart uint32, c *metrics.Counters) ([]xmldoc.Element, error)
}

// PrefetchSeeker is an optional extension of Seeker: an index that can
// publish an asynchronous readahead hint for the landing page of a future
// SeekGE/AppendAncestors probe (core.Tree.PrefetchGE). Join algorithms
// type-assert for it and hint skip targets before the work that precedes
// the skip, so the landing page's I/O overlaps in-flight computation.
type PrefetchSeeker interface {
	PrefetchGE(key uint32, c *metrics.Counters)
}

// MarkableSource is a Source whose iterators can rewind (MPMGJN needs it).
type MarkableSource interface {
	ScanMarkable(c *metrics.Counters) (*elemlist.Iterator, error)
	Len() int
}

// --- source adapters ------------------------------------------------------

// ListSource adapts a paged element list (no index).
type ListSource struct{ L *elemlist.List }

// Scan opens a sequential scan.
func (s ListSource) Scan(c *metrics.Counters) (Iterator, error) { return s.L.Scan(c), nil }

// ScanMarkable opens a rewindable scan for MPMGJN.
func (s ListSource) ScanMarkable(c *metrics.Counters) (*elemlist.Iterator, error) {
	return s.L.Scan(c), nil
}

// Len returns the number of elements.
func (s ListSource) Len() int { return s.L.Len() }

// BTreeSource adapts a B+-tree-indexed element set.
type BTreeSource struct{ T *btree.Tree }

// Scan opens a full scan over the leaf chain.
func (s BTreeSource) Scan(c *metrics.Counters) (Iterator, error) { return s.T.Scan(c) }

// SeekGE opens a scan at the first element with start ≥ key.
func (s BTreeSource) SeekGE(key uint32, c *metrics.Counters) (Iterator, error) {
	return s.T.SeekGE(key, c)
}

// Len returns the number of elements.
func (s BTreeSource) Len() int { return s.T.Len() }

// XRTreeSource adapts an XR-tree-indexed element set.
type XRTreeSource struct{ T *core.Tree }

// Scan opens a full scan over the leaf chain.
func (s XRTreeSource) Scan(c *metrics.Counters) (Iterator, error) { return s.T.Scan(c) }

// SeekGE opens a scan at the first element with start ≥ key.
func (s XRTreeSource) SeekGE(key uint32, c *metrics.Counters) (Iterator, error) {
	return s.T.SeekGE(key, c)
}

// AppendAncestors appends the ancestors of sd with start > minStart.
func (s XRTreeSource) AppendAncestors(dst []xmldoc.Element, sd, minStart uint32, c *metrics.Counters) ([]xmldoc.Element, error) {
	return s.T.AppendAncestors(dst, sd, minStart, c)
}

// PrefetchGE publishes a readahead hint for a future probe's landing page.
func (s XRTreeSource) PrefetchGE(key uint32, c *metrics.Counters) { s.T.PrefetchGE(key, c) }

// Len returns the number of elements.
func (s XRTreeSource) Len() int { return s.T.Len() }

// --- shared helpers -------------------------------------------------------

// cursor adds lazy one-element lookahead to an Iterator: cur/valid reflect
// Peek (free), and advance consumes the current element (one scan).
type cursor struct {
	it    Iterator
	cur   xmldoc.Element
	valid bool
}

func newCursor(it Iterator) *cursor {
	c := &cursor{it: it}
	c.cur, c.valid = it.Peek()
	return c
}

// advance consumes the current element and peeks the next.
func (c *cursor) advance() {
	c.it.Next()
	c.cur, c.valid = c.it.Peek()
}

// replace swaps the underlying iterator (after an index seek), closing the
// old one, and primes the lookahead without consuming anything.
func (c *cursor) replace(it Iterator) error {
	err := c.it.Close()
	c.it = it
	c.cur, c.valid = it.Peek()
	return err
}

func (c *cursor) close() error { return c.it.Close() }

func (c *cursor) err() error { return c.it.Err() }

// pollEvery is the cancellation-poll stride of the join loops. Indexed
// sources already poll the attached context at page boundaries; the stride
// poll bounds the cancellation latency of purely in-memory sources (the
// path-expression pipeline's intermediate results) to a few thousand
// elements without adding a context check to every iteration.
const pollEvery = 1024

// poller polls Counters.Interrupted once every pollEvery ticks.
type poller struct{ n uint32 }

func (p *poller) interrupted(c *metrics.Counters) error {
	if p.n++; p.n&(pollEvery-1) != 0 {
		return nil
	}
	return c.Interrupted()
}

// matches applies the mode's pair condition.
func matches(mode Mode, a, d xmldoc.Element) bool {
	if mode == ParentChild {
		return a.Level == d.Level-1
	}
	return true
}

// stack of ancestors of the current descendant, outermost first.
type ancStack struct {
	els []xmldoc.Element
}

func (s *ancStack) push(e xmldoc.Element) { s.els = append(s.els, e) }

func (s *ancStack) empty() bool { return len(s.els) == 0 }

func (s *ancStack) topStart() uint32 {
	if len(s.els) == 0 {
		return 0
	}
	return s.els[len(s.els)-1].Start
}

// popNonAncestors removes stack elements that cannot contain a region
// starting at start (their end precedes it).
func (s *ancStack) popNonAncestors(start uint32) {
	for len(s.els) > 0 && s.els[len(s.els)-1].End < start {
		s.els = s.els[:len(s.els)-1]
	}
}

// emitAll pairs every stacked ancestor with d. One call is one output
// batch; its size flows to the tracer as a single EvOutput event.
func (s *ancStack) emitAll(mode Mode, d xmldoc.Element, emit EmitFunc, c *metrics.Counters) {
	var n int64
	for _, a := range s.els {
		if matches(mode, a, d) {
			emit(a, d)
			n++
		}
	}
	if c != nil {
		c.OutputPairs += n
		if n > 0 {
			c.Emit(obs.EvOutput, n)
		}
	}
}
