package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xrtree/internal/metrics"
	"xrtree/internal/xmldoc"
)

// TestQuickAllAlgorithmsAgree is a property test: for any seed, all four
// algorithms produce exactly the reference join on a random document.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as, ds := genDoc(rng, 40+rng.Intn(80), 60+rng.Intn(120), 1+rng.Intn(12))
		if len(as) == 0 || len(ds) == 0 {
			return true
		}
		pool := newPool(t, 512, 256)
		fa := buildFixture(t, pool, as)
		fd := buildFixture(t, pool, ds)
		want := Reference(AncestorDescendant, as, ds)

		for name, run := range map[string]func(emit EmitFunc) error{
			"stack": func(emit EmitFunc) error {
				return StackTreeDesc(AncestorDescendant, fa.list, fd.list, emit, nil)
			},
			"mpmgjn": func(emit EmitFunc) error {
				return MPMGJN(AncestorDescendant, fa.list, fd.list, emit, nil)
			},
			"bplus": func(emit EmitFunc) error {
				return BPlus(AncestorDescendant, fa.bt, fd.bt, emit, nil)
			},
			"xrstack": func(emit EmitFunc) error {
				return XRStack(AncestorDescendant, fa.xr, fd.xr, emit, nil)
			},
		} {
			var got []Pair
			if err := run(Collect(&got)); err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if len(got) != len(want) {
				t.Logf("seed %d %s: %d pairs, want %d", seed, name, len(got), len(want))
				return false
			}
			sortPairs(got)
			w := append([]Pair(nil), want...)
			sortPairs(w)
			for i := range w {
				if got[i].A.Start != w[i].A.Start || got[i].D.Start != w[i].D.Start {
					t.Logf("seed %d %s: pair %d mismatch", seed, name, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestDrainAfterAncestorsExhausted covers the post-loop drain: the last
// ancestor contains a long tail of descendants that must still be emitted
// after A is exhausted.
func TestDrainAfterAncestorsExhausted(t *testing.T) {
	as := []xmldoc.Element{{DocID: 1, Start: 1, End: 10000, Level: 1}}
	var ds []xmldoc.Element
	for i := 0; i < 200; i++ {
		ds = append(ds, xmldoc.Element{DocID: 1, Start: uint32(100 + 2*i), End: uint32(100 + 2*i + 1), Level: 2})
	}
	pool := newPool(t, 512, 128)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)
	for name, run := range map[string]func(emit EmitFunc) error{
		"stack": func(emit EmitFunc) error {
			return StackTreeDesc(AncestorDescendant, fa.list, fd.list, emit, nil)
		},
		"bplus": func(emit EmitFunc) error {
			return BPlus(AncestorDescendant, fa.bt, fd.bt, emit, nil)
		},
		"xrstack": func(emit EmitFunc) error {
			return XRStack(AncestorDescendant, fa.xr, fd.xr, emit, nil)
		},
	} {
		n := 0
		if err := run(func(a, d xmldoc.Element) { n++ }); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 200 {
			t.Errorf("%s: %d pairs after drain, want 200", name, n)
		}
	}
}

// TestScanCountingSemantics pins the DESIGN.md accounting rules on a tiny
// fixed input so regressions in the counters are caught precisely.
func TestScanCountingSemantics(t *testing.T) {
	// Two flat ancestors, second one joining; two descendants under it.
	as := []xmldoc.Element{
		{DocID: 1, Start: 1, End: 2, Level: 2},
		{DocID: 1, Start: 10, End: 20, Level: 2},
	}
	ds := []xmldoc.Element{
		{DocID: 1, Start: 11, End: 12, Level: 3},
		{DocID: 1, Start: 13, End: 14, Level: 3},
	}
	pool := newPool(t, 512, 128)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)

	var c metrics.Counters
	if err := StackTreeDesc(AncestorDescendant, fa.list, fd.list, nil2(), &c); err != nil {
		t.Fatal(err)
	}
	// The merge consumes both ancestors and both descendants.
	if c.ElementsScanned != 4 {
		t.Errorf("stack scanned %d, want 4", c.ElementsScanned)
	}

	c.Reset()
	if err := BPlus(AncestorDescendant, fa.bt, fd.bt, nil2(), &c); err != nil {
		t.Fatal(err)
	}
	// B+: examines a1 (skip, counts 1), pushes a2 (1), consumes d1, d2 (2).
	if c.ElementsScanned != 4 {
		t.Errorf("bplus scanned %d, want 4", c.ElementsScanned)
	}

	c.Reset()
	if err := XRStack(AncestorDescendant, fa.xr, fd.xr, nil2(), &c); err != nil {
		t.Fatal(err)
	}
	// XR: FindAncestors retrieves a2 once (1), consumes d1, d2 (2); a1 is
	// jumped over by the index, not scanned.
	if c.ElementsScanned != 3 {
		t.Errorf("xrstack scanned %d, want 3", c.ElementsScanned)
	}
}

func nil2() EmitFunc { return func(a, d xmldoc.Element) {} }
