package join

// Parallel structural-join driver. The paper's join definition (§2.2)
// requires a.DocId == d.DocId, so a collection-level join decomposes into
// fully independent per-document joins: region codes of different
// documents never interact, and the result set is the concatenation of the
// per-document results in document order. That makes DocId the natural
// partitioning key — no result pair, stack state, or skip decision ever
// crosses a partition boundary, so running partitions on K goroutines is
// result-identical to the sequential loop.
//
// Workers share the (sharded) buffer pool and the latched trees; each
// works against its own metrics.Counters so the hot counting paths stay
// plain increments, and the per-task counters are folded into the caller's
// set when the pool drains.
//
// Output ordering uses a chunked head-streaming scheme: the task at the
// front of the flush order streams its pairs to the caller's emit in
// fixed-size chunks, while tasks running ahead of the front spill their
// chunks aside; when the front task finishes, the spilled chunks of the
// next tasks drain in order and the new front task switches to streaming.
// Chunks are recycled through a sync.Pool, so an output-heavy join does
// not allocate proportionally to its result size the way a naive
// buffer-everything merge would (which showed up as a GC-bound slowdown
// well below sequential speed in profiles).

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"time"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/xmldoc"
)

// Task is one independent partition of a parallel join: typically the two
// access paths of one document, closed over by Run. Run must stream its
// pairs to the provided emit and account costs into the provided counters
// (which carry the shared tracer); it must not retain either after
// returning.
type Task struct {
	DocID uint32
	Run   func(emit EmitFunc, c *metrics.Counters) error
}

// Options configures Parallel.
type Options struct {
	// Workers is the number of join goroutines; ≤ 0 selects GOMAXPROCS.
	// 1 runs the tasks sequentially in the calling goroutine.
	Workers int
}

// emitChunkPairs is the spill-chunk size: 2048 pairs ≈ 80 KiB, large
// enough to amortize the lock per delivery, small enough to recycle.
const emitChunkPairs = 2048

var chunkPool = sync.Pool{New: func() any {
	s := make([]Pair, 0, emitChunkPairs)
	return &s
}}

func getChunk() []Pair      { return *(chunkPool.Get().(*[]Pair)) }
func putChunk(chunk []Pair) { chunk = chunk[:0]; chunkPool.Put(&chunk) }

// driverState is the shared merge state of one Parallel run; mu guards
// everything, including calls to the caller's emit (which must serialize).
type driverState struct {
	mu        sync.Mutex
	emit      EmitFunc
	spill     [][][]Pair // per task: completed chunks waiting for the front
	done      []bool
	flushNext int // first task whose output has not fully reached emit
	merged    metrics.Counters
	firstErr  error
	failed    bool
	next      int // task dispatch counter
}

// drainLocked advances the front: emit spilled chunks in task order until
// reaching an unfinished task (which then streams directly) or the end.
func (s *driverState) drainLocked() {
	for s.flushNext < len(s.done) {
		j := s.flushNext
		for _, chunk := range s.spill[j] {
			for _, p := range chunk {
				s.emit(p.A, p.D)
			}
			putChunk(chunk)
		}
		s.spill[j] = nil
		if !s.done[j] {
			return
		}
		s.flushNext++
	}
}

// taskEmitter is the per-task EmitFunc target: pairs accumulate in a
// pooled chunk; full chunks either stream to the caller (front task) or
// spill aside (tasks ahead of the front).
type taskEmitter struct {
	s     *driverState
	i     int
	chunk []Pair
}

func (e *taskEmitter) emit(a, d xmldoc.Element) {
	e.chunk = append(e.chunk, Pair{A: a, D: d})
	if len(e.chunk) == cap(e.chunk) {
		e.deliver()
	}
}

func (e *taskEmitter) deliver() {
	s := e.s
	s.mu.Lock()
	e.deliverLocked()
	s.mu.Unlock()
}

func (e *taskEmitter) deliverLocked() {
	s := e.s
	switch {
	case s.failed:
		// A task already failed: the run's output is abandoned, keep the
		// chunk for reuse.
		e.chunk = e.chunk[:0]
	case e.i == s.flushNext:
		// Front task: stream through and reuse the chunk in place. Any
		// spill this task accumulated before becoming the front was drained
		// when the front reached it.
		for _, p := range e.chunk {
			s.emit(p.A, p.D)
		}
		e.chunk = e.chunk[:0]
	default:
		s.spill[e.i] = append(s.spill[e.i], e.chunk)
		e.chunk = getChunk()
	}
}

// finishLocked delivers the final partial chunk, marks the task done, and
// advances the front past it if it was the front.
func (e *taskEmitter) finishLocked() {
	if len(e.chunk) > 0 {
		e.deliverLocked()
	}
	s := e.s
	s.done[e.i] = true
	if e.i == s.flushNext {
		s.flushNext++
		s.drainLocked()
	}
	putChunk(e.chunk)
	e.chunk = nil
}

// Parallel runs tasks on a pool of opts.Workers goroutines, streaming
// result pairs to emit in task order (the DocId order of the sequential
// loop) and merging every task's counters into c. The merge happens
// per-task under a lock and folds into c only after every worker has
// returned, so c needs no atomicity; c.Elapsed receives the driver's
// wall-clock time, not the sum of the concurrent per-task spans. A tracer
// carried by c receives events from all workers and must be safe for
// concurrent use (obs.Collector is).
func Parallel(tasks []Task, opts Options, emit EmitFunc, c *metrics.Counters) error {
	if emit == nil {
		emit = func(a, d xmldoc.Element) {}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		// Sequential fast path: no buffering, counters accumulate in place.
		defer startTimer(c)()
		for _, t := range tasks {
			if err := t.Run(emit, c); err != nil {
				return err
			}
		}
		return nil
	}

	start := time.Now()
	var tracer obs.Tracer
	var ctx context.Context
	if c != nil {
		tracer = c.Tracer
		ctx = c.Ctx
	}
	// When the caller's tracer carries spans, each partition gets a child
	// span so a request trace shows the per-document tasks individually
	// (their overlap is the parallelism; their attributes partition the
	// request's page reads and scans). Flat tracers see the same event
	// stream as before.
	spanner, _ := tracer.(obs.SpanTracer)
	s := &driverState{
		emit:  emit,
		spill: make([][][]Pair, len(tasks)),
		done:  make([]bool, len(tasks)),
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s.mu.Lock()
				if s.failed || s.next >= len(tasks) {
					s.mu.Unlock()
					return
				}
				i := s.next
				s.next++
				s.mu.Unlock()

				// A canceled run stops dispatching new partitions; the one
				// in flight on each worker stops at its next poll point via
				// the Ctx carried by the task-local counters.
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						s.mu.Lock()
						if !s.failed {
							s.failed = true
							s.firstErr = err
						}
						s.mu.Unlock()
						return
					}
				}

				tr := tracer
				var sp *obs.Span
				if spanner != nil {
					sp = spanner.StartSpan("task doc=" + strconv.FormatUint(uint64(tasks[i].DocID), 10))
					tr = sp
				}
				local := metrics.Counters{Tracer: tr, Ctx: ctx}
				e := &taskEmitter{s: s, i: i, chunk: getChunk()}
				err := tasks[i].Run(e.emit, &local)
				sp.End()
				// The concurrent spans overlap; the driver's wall clock is
				// the meaningful elapsed time.
				local.Elapsed = 0

				s.mu.Lock()
				if err != nil {
					if !s.failed {
						s.failed = true
						s.firstErr = err
					}
					putChunk(e.chunk)
					s.mu.Unlock()
					return
				}
				s.merged.Add(&local)
				e.finishLocked()
				s.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if s.firstErr != nil {
		return s.firstErr
	}
	// All workers have returned: nothing else touches c (including the
	// buffer pool's sink, if c is attached there), so a plain merge is safe.
	if c != nil {
		c.Add(&s.merged)
		c.Elapsed += time.Since(start)
		c.Emit(obs.EvJoinSpan, int64(time.Since(start)))
	}
	return nil
}
