package join

import (
	"time"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/xmldoc"
)

// StackTreeDesc runs the no-index baseline (Stack-Tree-Desc, [22]): a
// single synchronized pass over both lists with a stack of open ancestors.
// Every element of both inputs is scanned exactly once whether or not it
// joins — the cost profile the "no-index" rows of Tables 2 and 3 show.
func StackTreeDesc(mode Mode, a, d Source, emit EmitFunc, c *metrics.Counters) error {
	defer startTimer(c)()
	ai, err := a.Scan(c)
	if err != nil {
		return err
	}
	defer ai.Close()
	di, err := d.Scan(c)
	if err != nil {
		return err
	}
	defer di.Close()

	ca := newCursor(ai)
	cd := newCursor(di)
	var stack ancStack
	var pl poller

	for cd.valid && (ca.valid || !stack.empty()) {
		if err := pl.interrupted(c); err != nil {
			return err
		}
		if ca.valid && ca.cur.Start < cd.cur.Start {
			stack.popNonAncestors(ca.cur.Start)
			stack.push(ca.cur)
			ca.advance()
		} else {
			stack.popNonAncestors(cd.cur.Start)
			stack.emitAll(mode, cd.cur, emit, c)
			cd.advance()
		}
	}
	return firstErr(ca.err(), cd.err())
}

// MPMGJN runs the multi-predicate merge join of Zhang et al. [25]: for each
// ancestor it rescans the descendant list from a slowly advancing mark, so
// nested ancestors re-read the same descendants — the redundant I/O that
// motivated the stack-based family. It requires rewindable scans, which the
// plain paged lists provide.
func MPMGJN(mode Mode, a Source, d MarkableSource, emit EmitFunc, c *metrics.Counters) error {
	defer startTimer(c)()
	ai, err := a.Scan(c)
	if err != nil {
		return err
	}
	defer ai.Close()
	di, err := d.ScanMarkable(c)
	if err != nil {
		return err
	}
	defer di.Close()

	mark := di.Mark()
	ca := newCursor(ai)
	var pl poller
	for ca.valid {
		if err := pl.interrupted(c); err != nil {
			return err
		}
		av := ca.cur
		if err := di.Restore(mark); err != nil {
			return err
		}
		var emitted int64
		for {
			dv, ok := di.Next()
			if !ok {
				break
			}
			if dv.Start <= av.Start {
				// dv can never join a later ancestor either: advance the mark.
				mark = di.Mark()
				continue
			}
			if dv.Start >= av.End {
				break
			}
			if matches(mode, av, dv) {
				emit(av, dv)
				emitted++
				if c != nil {
					c.OutputPairs++
				}
			}
		}
		if emitted > 0 {
			c.Emit(obs.EvOutput, emitted)
		}
		if di.Err() != nil {
			return di.Err()
		}
		ca.advance()
	}
	return ca.err()
}

// BPlus runs Anc_Des_B+ of Chien et al. [8] over B+-tree indexed inputs:
// descendants are skipped with range queries (seek to the current
// ancestor's start) and a non-matching ancestor's whole subtree is skipped
// by seeking past its end — the best a start-keyed B+-tree can do, which is
// why it degenerates toward the no-index scan on flat ancestor sets
// (Figure 7(b)).
func BPlus(mode Mode, a, d Seeker, emit EmitFunc, c *metrics.Counters) error {
	defer startTimer(c)()
	ai, err := a.Scan(c)
	if err != nil {
		return err
	}
	di, err := d.Scan(c)
	if err != nil {
		ai.Close()
		return err
	}
	ca := newCursor(ai)
	cd := newCursor(di)
	defer func() { ca.close(); cd.close() }()
	var stack ancStack
	var pl poller

	for ca.valid && cd.valid {
		if err := pl.interrupted(c); err != nil {
			return err
		}
		stack.popNonAncestors(cd.cur.Start)
		if ca.cur.Start < cd.cur.Start {
			if cd.cur.Start < ca.cur.End {
				// Current ancestor contains the current descendant.
				stack.push(ca.cur)
				ca.advance()
			} else {
				// No match: nothing inside ca can contain cd either; jump
				// past ca's subtree in the ancestor list. The examined
				// boundary element counts as scanned (its subtree does not),
				// matching the paper's B+ accounting.
				countScan(c, 1)
				c.Emit(obs.EvSkipAnc, int64(ca.cur.End+1)-int64(ca.cur.Start))
				it, err := a.SeekGE(ca.cur.End+1, c)
				if err != nil {
					return err
				}
				if err := ca.replace(it); err != nil {
					return err
				}
			}
		} else {
			if !stack.empty() {
				stack.emitAll(mode, cd.cur, emit, c)
				cd.advance()
			} else {
				// Skip descendants that precede every remaining ancestor;
				// the examined boundary descendant counts as scanned.
				countScan(c, 1)
				c.Emit(obs.EvSkipDesc, int64(ca.cur.Start+1)-int64(cd.cur.Start))
				it, err := d.SeekGE(ca.cur.Start+1, c)
				if err != nil {
					return err
				}
				if err := cd.replace(it); err != nil {
					return err
				}
			}
		}
	}
	if err := drainStack(mode, cd, &stack, emit, c); err != nil {
		return err
	}
	return firstErr(ca.err(), cd.err())
}

func countScan(c *metrics.Counters, n int64) {
	if c != nil {
		c.ElementsScanned += n
	}
}

// XRStack runs Algorithm 6 over XR-tree indexed inputs. When the ancestor
// cursor falls behind the current descendant it calls FindAncestors to jump
// directly to the descendant's ancestors — skipping every non-matching
// ancestor in between, which the B+ algorithm cannot do — then advances the
// ancestor cursor past the descendant's start (line 12). Descendant
// skipping (line 19) is the same range query B+ uses.
func XRStack(mode Mode, a AncestorSeeker, d Seeker, emit EmitFunc, c *metrics.Counters) error {
	defer startTimer(c)()
	ai, err := a.Scan(c)
	if err != nil {
		return err
	}
	di, err := d.Scan(c)
	if err != nil {
		ai.Close()
		return err
	}
	ca := newCursor(ai)
	cd := newCursor(di)
	defer func() { ca.close(); cd.close() }()
	var stack ancStack
	var scratch []xmldoc.Element // reused across FindAncestors probes
	var pl poller
	// Skip targets are known before the work that precedes the skip runs,
	// so indexes that support readahead get hinted early (see below).
	pa, _ := a.(PrefetchSeeker)
	pd, _ := d.(PrefetchSeeker)

	for ca.valid && cd.valid {
		if err := pl.interrupted(c); err != nil {
			return err
		}
		// Line 5-7: pop stacked elements that are not ancestors of CurD.
		stack.popNonAncestors(cd.cur.Start)
		if ca.cur.Start < cd.cur.Start {
			// Lines 9-13: fetch CurD's ancestors beyond the stack top, push
			// them, report all pairs, and advance both cursors. Every
			// ancestor not already stacked starts at or after CurA (earlier
			// ones were pushed by previous FindAncestors calls or cannot
			// contain CurD anymore), so the probe is bounded below by both
			// the stack top and CurA — keeping its cost proportional to the
			// new ancestors found, per Theorem 4.
			minStart := stack.topStart()
			if ca.cur.Start-1 > minStart {
				minStart = ca.cur.Start - 1
			}
			if pa != nil {
				// Line 12's SeekGE target is already known; hint its landing
				// page now so the read overlaps the stab-list probe below.
				pa.PrefetchGE(cd.cur.Start, c)
			}
			anc, err := a.AppendAncestors(scratch[:0], cd.cur.Start, minStart, c)
			if err != nil {
				return err
			}
			scratch = anc
			for _, e := range anc {
				stack.push(e)
			}
			stack.emitAll(mode, cd.cur, emit, c)
			// Line 12 seeks the first ancestor with start > CurD.start; we
			// seek to ≥ so an element starting exactly at CurD.start (only
			// possible in a self-join) stays visible as a future ancestor.
			c.Emit(obs.EvSkipAnc, int64(cd.cur.Start)-int64(ca.cur.Start))
			it, err := a.SeekGE(cd.cur.Start, c)
			if err != nil {
				return err
			}
			if err := ca.replace(it); err != nil {
				return err
			}
			cd.advance()
		} else {
			if !stack.empty() {
				// Lines 15-17: in-stack ancestors may join the following
				// descendants, so advance D one element at a time.
				stack.emitAll(mode, cd.cur, emit, c)
				cd.advance()
			} else {
				// Line 19: skip descendants before CurA with a range query;
				// the examined boundary descendant counts as scanned (same
				// accounting as the B+ algorithm's descendant skip).
				countScan(c, 1)
				c.Emit(obs.EvSkipDesc, int64(ca.cur.Start+1)-int64(cd.cur.Start))
				if pd != nil {
					// Hint the skip landing page; its read overlaps the
					// seek's root-to-leaf descent.
					pd.PrefetchGE(ca.cur.Start+1, c)
				}
				it, err := d.SeekGE(ca.cur.Start+1, c)
				if err != nil {
					return err
				}
				if err := cd.replace(it); err != nil {
					return err
				}
			}
		}
	}
	if err := drainStack(mode, cd, &stack, emit, c); err != nil {
		return err
	}
	return firstErr(ca.err(), cd.err())
}

// drainStack finishes a join after the ancestor input is exhausted:
// remaining descendants can only match already-stacked ancestors. The
// drain can still walk the whole remaining descendant list, so it keeps
// polling for cancellation on the same stride as the main loops.
func drainStack(mode Mode, cd *cursor, stack *ancStack, emit EmitFunc, c *metrics.Counters) error {
	var pl poller
	for cd.valid && !stack.empty() {
		if err := pl.interrupted(c); err != nil {
			return err
		}
		stack.popNonAncestors(cd.cur.Start)
		if stack.empty() {
			return nil
		}
		stack.emitAll(mode, cd.cur, emit, c)
		cd.advance()
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// startTimer times a join run, accumulating into c.Elapsed and emitting the
// run's duration as one EvJoinSpan event.
func startTimer(c *metrics.Counters) func() {
	if c == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		c.Elapsed += d
		c.Emit(obs.EvJoinSpan, int64(d))
	}
}

// Reference computes the join by brute force over in-memory slices — the
// oracle the tests compare every algorithm against.
func Reference(mode Mode, as, ds []xmldoc.Element) []Pair {
	var out []Pair
	for _, a := range as {
		for _, d := range ds {
			if a.Start < d.Start && d.Start < a.End && matches(mode, a, d) {
				out = append(out, Pair{A: a, D: d})
			}
		}
	}
	return out
}
