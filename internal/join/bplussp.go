package join

// The B+sp variant of Chien et al. [8]: the basic Anc_Des_B+ algorithm
// "enhanced by adding sibling pointers based on the notion of containment".
// Each element stores a pointer to its following sibling — the first
// element after it that it does not contain — so skipping a non-matching
// ancestor's subtree follows one stored pointer straight to the sibling's
// page instead of probing the B+-tree. The paper measured B+sp (and
// B+psp) and omitted the results as "similar behavior as that of B+":
// the same elements are examined, only index-node probes are saved.
// BenchmarkBPlusSP reproduces exactly that finding.

import (
	"fmt"

	"xrtree/internal/elemlist"
	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/xmldoc"
)

// SiblingTable maps each element ordinal to the ordinal of its following
// sibling: the first later element whose start exceeds this element's end.
// It is the in-memory image of the per-element sibling pointers [8] stores
// with the records.
type SiblingTable []int32

// BuildSiblingTable computes the table for a start-sorted element list in
// one stack sweep. An element whose subtree runs to the end of the list
// maps to len(es).
func BuildSiblingTable(es []xmldoc.Element) SiblingTable {
	tab := make(SiblingTable, len(es))
	type open struct {
		idx int
		end uint32
	}
	var stack []open
	for i, e := range es {
		for len(stack) > 0 && stack[len(stack)-1].end < e.Start {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			tab[top.idx] = int32(i)
		}
		stack = append(stack, open{idx: i, end: e.End})
	}
	for _, o := range stack {
		tab[o.idx] = int32(len(es))
	}
	return tab
}

// SiblingListSource couples a paged element list with its sibling table;
// the B+sp join uses it for the ancestor side.
type SiblingListSource struct {
	L   *elemlist.List
	Sib SiblingTable
}

// NewSiblingListSource builds the sibling table for the list's elements
// (which the caller must supply in the same order the list was built from).
func NewSiblingListSource(l *elemlist.List, es []xmldoc.Element) (SiblingListSource, error) {
	if l.Len() != len(es) {
		return SiblingListSource{}, fmt.Errorf("join: sibling table over %d elements for a list of %d", len(es), l.Len())
	}
	return SiblingListSource{L: l, Sib: BuildSiblingTable(es)}, nil
}

// Scan opens a sequential scan.
func (s SiblingListSource) Scan(c *metrics.Counters) (Iterator, error) { return s.L.Scan(c), nil }

// Len returns the number of elements.
func (s SiblingListSource) Len() int { return s.L.Len() }

// BPlusSP runs the sibling-pointer variant: identical pairing logic to
// BPlus, but a non-matching ancestor's subtree is skipped by following its
// stored sibling pointer (one positional page access) rather than a B+-tree
// range probe, and the descendant side advances by plain scanning (the
// variant indexes only the ancestor side's siblings).
func BPlusSP(mode Mode, a SiblingListSource, d Seeker, emit EmitFunc, c *metrics.Counters) error {
	defer startTimer(c)()
	ai, err := a.Scan(c)
	if err != nil {
		return err
	}
	di, err := d.Scan(c)
	if err != nil {
		ai.Close()
		return err
	}
	ca := newCursor(ai)
	cd := newCursor(di)
	defer func() { ca.close(); cd.close() }()
	var stack ancStack
	var pl poller
	ordinal := 0 // ordinal of ca.cur within the ancestor list

	for ca.valid && cd.valid {
		if err := pl.interrupted(c); err != nil {
			return err
		}
		stack.popNonAncestors(cd.cur.Start)
		if ca.cur.Start < cd.cur.Start {
			if cd.cur.Start < ca.cur.End {
				stack.push(ca.cur)
				ca.advance()
				ordinal++
			} else {
				// Follow the sibling pointer: the examined boundary element
				// counts as scanned, its subtree is skipped with a single
				// positional access.
				countScan(c, 1)
				c.Emit(obs.EvSkipAnc, int64(ca.cur.End+1)-int64(ca.cur.Start))
				next := int(a.Sib[ordinal])
				it, err := a.L.ScanAt(next, c)
				if err != nil {
					return err
				}
				if err := ca.replace(it); err != nil {
					return err
				}
				ordinal = next
			}
		} else {
			if !stack.empty() {
				stack.emitAll(mode, cd.cur, emit, c)
				cd.advance()
			} else {
				countScan(c, 1)
				c.Emit(obs.EvSkipDesc, int64(ca.cur.Start+1)-int64(cd.cur.Start))
				it, err := d.SeekGE(ca.cur.Start+1, c)
				if err != nil {
					return err
				}
				if err := cd.replace(it); err != nil {
					return err
				}
			}
		}
	}
	if err := drainStack(mode, cd, &stack, emit, c); err != nil {
		return err
	}
	return firstErr(ca.err(), cd.err())
}
