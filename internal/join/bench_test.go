package join

import (
	"math/rand"
	"testing"

	"xrtree/internal/bufferpool"
	"xrtree/internal/core"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// BenchmarkXRStackJoin measures a full XR-stack ancestor/descendant join
// over two XR-trees through a small pool, so index descents, stab-list
// probes, and leaf-chain scans all pay real buffer replacement.
func BenchmarkXRStackJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	as, ds := genDoc(rng, 2000, 10000, 8)

	f := pagefile.NewMem(pagefile.Options{PageSize: pagefile.DefaultPageSize})
	b.Cleanup(func() { f.Close() })
	pool, err := bufferpool.New(f, 100)
	if err != nil {
		b.Fatal(err)
	}
	buildXR := func(es []xmldoc.Element) *core.Tree {
		t, err := core.New(pool, es[0].DocID, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := t.BulkLoad(es, 1.0); err != nil {
			b.Fatal(err)
		}
		return t
	}
	xa := XRTreeSource{T: buildXR(as)}
	xd := XRTreeSource{T: buildXR(ds)}

	emit := func(a, d xmldoc.Element) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c metrics.Counters
		if err := XRStack(AncestorDescendant, xa, xd, emit, &c); err != nil {
			b.Fatal(err)
		}
		if c.OutputPairs == 0 {
			b.Fatal("join produced no pairs")
		}
	}
}
