package join

import (
	"math/rand"
	"testing"

	"xrtree/internal/elemlist"
	"xrtree/internal/metrics"
	"xrtree/internal/xmldoc"
)

func TestBuildSiblingTable(t *testing.T) {
	// Structure: a(1,100){b(2,10){c(3,4)}, d(20,30)}, e(200,201)
	es := []xmldoc.Element{
		{DocID: 1, Start: 1, End: 100},
		{DocID: 1, Start: 2, End: 10},
		{DocID: 1, Start: 3, End: 4},
		{DocID: 1, Start: 20, End: 30},
		{DocID: 1, Start: 200, End: 201},
	}
	tab := BuildSiblingTable(es)
	want := []int32{4, 3, 3, 4, 5}
	for i := range want {
		if tab[i] != want[i] {
			t.Errorf("sib[%d] = %d, want %d", i, tab[i], want[i])
		}
	}
}

func TestBuildSiblingTableBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	as, _ := genDoc(rng, 200, 50, 10)
	tab := BuildSiblingTable(as)
	for i, e := range as {
		want := len(as)
		for j := i + 1; j < len(as); j++ {
			if as[j].Start > e.End {
				want = j
				break
			}
		}
		if int(tab[i]) != want {
			t.Fatalf("sib[%d] = %d, want %d", i, tab[i], want)
		}
	}
}

func TestBPlusSPMatchesOracle(t *testing.T) {
	for _, seed := range []int64{2, 9, 33} {
		for _, depth := range []int{1, 6, 12} {
			rng := rand.New(rand.NewSource(seed))
			as, ds := genDoc(rng, 150, 250, depth)
			pool := newPool(t, 512, 256)
			fa := buildFixture(t, pool, as)
			fd := buildFixture(t, pool, ds)
			sp, err := NewSiblingListSource(fa.list.L, as)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []Mode{AncestorDescendant, ParentChild} {
				var got []Pair
				if err := BPlusSP(mode, sp, fd.bt, Collect(&got), nil); err != nil {
					t.Fatalf("BPlusSP: %v", err)
				}
				samePairs(t, "BPlusSP", got, Reference(mode, as, ds))
			}
		}
	}
}

// TestBPlusSPSimilarToBPlus reproduces the paper's omitted result: B+sp
// scans the same elements as B+ (identical skipping decisions) and only
// saves index-node probes.
func TestBPlusSPSimilarToBPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	as, ds := genDoc(rng, 400, 700, 12)
	pool := newPool(t, 512, 512)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)
	sp, err := NewSiblingListSource(fa.list.L, as)
	if err != nil {
		t.Fatal(err)
	}

	var cb, cs metrics.Counters
	if err := BPlus(AncestorDescendant, fa.bt, fd.bt, nil2(), &cb); err != nil {
		t.Fatal(err)
	}
	if err := BPlusSP(AncestorDescendant, sp, fd.bt, nil2(), &cs); err != nil {
		t.Fatal(err)
	}
	if cb.OutputPairs != cs.OutputPairs {
		t.Fatalf("pair counts differ: %d vs %d", cb.OutputPairs, cs.OutputPairs)
	}
	if cb.ElementsScanned != cs.ElementsScanned {
		t.Errorf("scans differ: B+ %d, B+sp %d (paper: similar behavior)",
			cb.ElementsScanned, cs.ElementsScanned)
	}
	if cs.IndexNodeReads > cb.IndexNodeReads {
		t.Errorf("B+sp probed %d index nodes, B+ %d; sibling pointers should save probes",
			cs.IndexNodeReads, cb.IndexNodeReads)
	}
}

func TestScanAtPositions(t *testing.T) {
	pool := newPool(t, 256, 64)
	var es []xmldoc.Element
	for i := 0; i < 100; i++ {
		es = append(es, xmldoc.Element{DocID: 1, Start: uint32(2*i + 1), End: uint32(2*i + 2)})
	}
	l, err := elemlist.Build(pool, es)
	if err != nil {
		t.Fatal(err)
	}
	for _, ord := range []int{0, 1, 15, 16, 31, 99} {
		it, err := l.ScanAt(ord, nil)
		if err != nil {
			t.Fatalf("ScanAt(%d): %v", ord, err)
		}
		e, ok := it.Next()
		it.Close()
		if !ok || e != es[ord] {
			t.Errorf("ScanAt(%d) = %v,%v want %v", ord, e, ok, es[ord])
		}
	}
	it, err := l.ScanAt(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Error("ScanAt(len) yielded an element")
	}
	it.Close()
}
