package join

import (
	"math/rand"
	"sort"
	"testing"

	"xrtree/internal/btree"
	"xrtree/internal/bufferpool"
	"xrtree/internal/core"
	"xrtree/internal/elemlist"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// fixture builds all three access paths over one element set.
type fixture struct {
	list ListSource
	bt   BTreeSource
	xr   XRTreeSource
}

func newPool(t *testing.T, pageSize, frames int) *bufferpool.Pool {
	t.Helper()
	f := pagefile.NewMem(pagefile.Options{PageSize: pageSize})
	t.Cleanup(func() { f.Close() })
	p, err := bufferpool.New(f, frames)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildFixture(t *testing.T, pool *bufferpool.Pool, es []xmldoc.Element) fixture {
	t.Helper()
	l, err := elemlist.Build(pool, es)
	if err != nil {
		t.Fatalf("elemlist.Build: %v", err)
	}
	bt, err := btree.New(pool, es[0].DocID)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.BulkLoad(es, 1.0); err != nil {
		t.Fatalf("btree.BulkLoad: %v", err)
	}
	xr, err := core.New(pool, es[0].DocID, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := xr.BulkLoad(es, 1.0); err != nil {
		t.Fatalf("core.BulkLoad: %v", err)
	}
	return fixture{list: ListSource{L: l}, bt: BTreeSource{T: bt}, xr: XRTreeSource{T: xr}}
}

// genDoc builds a random document and returns two tag sets (potential
// ancestors "a" and descendants "d") with controllable nesting.
func genDoc(rng *rand.Rand, nA, nD, maxDepth int) (as, ds []xmldoc.Element) {
	b := xmldoc.NewBuilder(1, 1)
	countA, countD := 0, 0
	var build func(depth int)
	build = func(depth int) {
		if countA >= nA && countD >= nD {
			return
		}
		pickA := rng.Intn(2) == 0 && countA < nA
		if pickA {
			countA++
			b.Open("a")
		} else {
			countD++
			b.Open("d")
		}
		kids := rng.Intn(4)
		if depth >= maxDepth {
			kids = 0
		}
		for i := 0; i < kids && (countA < nA || countD < nD); i++ {
			build(depth + 1)
		}
		b.Close()
	}
	b.Open("root")
	for countA < nA || countD < nD {
		build(1)
	}
	b.Close()
	doc, err := b.Document()
	if err != nil {
		panic(err)
	}
	return doc.ElementsByTag("a"), doc.ElementsByTag("d")
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A.Start != ps[j].A.Start {
			return ps[i].A.Start < ps[j].A.Start
		}
		return ps[i].D.Start < ps[j].D.Start
	})
}

func samePairs(t *testing.T, what string, got, want []Pair) {
	t.Helper()
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i].A.Start != want[i].A.Start || got[i].D.Start != want[i].D.Start {
			t.Fatalf("%s: pair %d = (%v,%v), want (%v,%v)",
				what, i, got[i].A, got[i].D, want[i].A, want[i].D)
		}
	}
}

// runAll executes all four algorithms and checks them against the oracle.
func runAll(t *testing.T, mode Mode, fa, fd fixture, as, ds []xmldoc.Element) {
	t.Helper()
	want := Reference(mode, as, ds)

	var got []Pair
	var c metrics.Counters
	if err := StackTreeDesc(mode, fa.list, fd.list, Collect(&got), &c); err != nil {
		t.Fatalf("StackTreeDesc: %v", err)
	}
	samePairs(t, "StackTreeDesc", got, want)
	if c.OutputPairs != int64(len(want)) {
		t.Errorf("StackTreeDesc OutputPairs = %d, want %d", c.OutputPairs, len(want))
	}

	got = nil
	c.Reset()
	if err := MPMGJN(mode, fa.list, fd.list, Collect(&got), &c); err != nil {
		t.Fatalf("MPMGJN: %v", err)
	}
	samePairs(t, "MPMGJN", got, want)

	got = nil
	c.Reset()
	if err := BPlus(mode, fa.bt, fd.bt, Collect(&got), &c); err != nil {
		t.Fatalf("BPlus: %v", err)
	}
	samePairs(t, "BPlus", got, want)

	got = nil
	c.Reset()
	if err := XRStack(mode, fa.xr, fd.xr, Collect(&got), &c); err != nil {
		t.Fatalf("XRStack: %v", err)
	}
	samePairs(t, "XRStack", got, want)
}

func TestAllAlgorithmsMatchOracleRandom(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, depth := range []int{2, 6, 14} {
			rng := rand.New(rand.NewSource(seed))
			as, ds := genDoc(rng, 120, 200, depth)
			if len(as) == 0 || len(ds) == 0 {
				t.Fatalf("seed %d depth %d: empty sets", seed, depth)
			}
			pool := newPool(t, 512, 256)
			fa := buildFixture(t, pool, as)
			fd := buildFixture(t, pool, ds)
			runAll(t, AncestorDescendant, fa, fd, as, ds)
			runAll(t, ParentChild, fa, fd, as, ds)
		}
	}
}

func TestSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	as, _ := genDoc(rng, 150, 10, 10)
	pool := newPool(t, 512, 256)
	fa := buildFixture(t, pool, as)
	runAll(t, AncestorDescendant, fa, fa, as, as)
}

func TestDisjointSets(t *testing.T) {
	// Ancestors and descendants in disjoint position ranges: zero results,
	// and the indexed algorithms should scan almost nothing.
	var as, ds []xmldoc.Element
	for i := 0; i < 100; i++ {
		as = append(as, xmldoc.Element{DocID: 1, Start: uint32(2*i + 1), End: uint32(2*i + 2), Level: 2})
	}
	for i := 0; i < 100; i++ {
		ds = append(ds, xmldoc.Element{DocID: 1, Start: uint32(1000 + 2*i), End: uint32(1000 + 2*i + 1), Level: 3})
	}
	pool := newPool(t, 512, 256)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)
	runAll(t, AncestorDescendant, fa, fd, as, ds)

	var got []Pair
	var c metrics.Counters
	if err := XRStack(AncestorDescendant, fa.xr, fd.xr, Collect(&got), &c); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("disjoint join produced %d pairs", len(got))
	}
	if c.ElementsScanned > 20 {
		t.Errorf("XRStack scanned %d elements on disjoint sets, want few", c.ElementsScanned)
	}
}

func TestSkippingCounts(t *testing.T) {
	// The paper's Table 2 shape on flat (non-nested) ancestors: a long run
	// of sibling ancestors of which only 5% contain descendants, with every
	// descendant joining. B+ cannot skip flat ancestors (Figure 7(b)) and
	// degenerates toward the sequential scan, while XR-stack jumps straight
	// to each descendant's ancestors.
	var as, ds []xmldoc.Element
	pos := uint32(1)
	for i := 0; i < 2000; i++ {
		start := pos
		if i%20 == 0 {
			// A joining ancestor containing 5 descendants.
			pos++
			for k := 0; k < 5; k++ {
				ds = append(ds, xmldoc.Element{DocID: 1, Start: pos, End: pos + 1, Level: 3})
				pos += 2
			}
		}
		pos++
		as = append(as, xmldoc.Element{DocID: 1, Start: start, End: pos, Level: 2})
		pos++
	}
	pool := newPool(t, 512, 512)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)

	count := func(run func(c *metrics.Counters) error) int64 {
		var c metrics.Counters
		if err := run(&c); err != nil {
			t.Fatal(err)
		}
		return c.ElementsScanned
	}
	nidx := count(func(c *metrics.Counters) error {
		return StackTreeDesc(AncestorDescendant, fa.list, fd.list, func(a, d xmldoc.Element) {}, c)
	})
	bp := count(func(c *metrics.Counters) error {
		return BPlus(AncestorDescendant, fa.bt, fd.bt, func(a, d xmldoc.Element) {}, c)
	})
	xr := count(func(c *metrics.Counters) error {
		return XRStack(AncestorDescendant, fa.xr, fd.xr, func(a, d xmldoc.Element) {}, c)
	})
	if xr >= bp {
		t.Errorf("XRStack scanned %d ≥ BPlus %d on flat ancestors", xr, bp)
	}
	if bp > nidx+10 {
		t.Errorf("BPlus scanned %d > no-index %d", bp, nidx)
	}
	t.Logf("scanned: no-index=%d B+=%d XR=%d (pairs exist: %d)", nidx, bp, xr,
		len(Reference(AncestorDescendant, as, ds)))
}

func TestEmptyAndSingleInputs(t *testing.T) {
	pool := newPool(t, 512, 128)
	one := []xmldoc.Element{{DocID: 1, Start: 10, End: 100, Level: 1}}
	inside := []xmldoc.Element{{DocID: 1, Start: 20, End: 30, Level: 2}}
	fa := buildFixture(t, pool, one)
	fd := buildFixture(t, pool, inside)
	runAll(t, AncestorDescendant, fa, fd, one, inside)

	var got []Pair
	if err := XRStack(AncestorDescendant, fa.xr, fd.xr, Collect(&got), nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d pairs, want 1", len(got))
	}
}

func TestParentChildFiltering(t *testing.T) {
	// Three nested levels: grandparent-grandchild pairs appear in AD mode
	// but not in PC mode.
	es := []xmldoc.Element{
		{DocID: 1, Start: 1, End: 100, Level: 1},
		{DocID: 1, Start: 10, End: 50, Level: 2},
		{DocID: 1, Start: 20, End: 30, Level: 3},
	}
	pool := newPool(t, 512, 128)
	f := buildFixture(t, pool, es)

	var ad, pc []Pair
	if err := XRStack(AncestorDescendant, f.xr, f.xr, Collect(&ad), nil); err != nil {
		t.Fatal(err)
	}
	if err := XRStack(ParentChild, f.xr, f.xr, Collect(&pc), nil); err != nil {
		t.Fatal(err)
	}
	if len(ad) != 3 {
		t.Errorf("AD pairs = %d, want 3", len(ad))
	}
	if len(pc) != 2 {
		t.Errorf("PC pairs = %d, want 2", len(pc))
	}
}

func TestMPMGJNRescansMoreThanStack(t *testing.T) {
	// Heavily nested ancestors force MPMGJN to rescan descendants, so it
	// must scan strictly more elements than the stack-based merge.
	var as, ds []xmldoc.Element
	// 50 nested ancestors all containing the same 100 descendants.
	for i := 0; i < 50; i++ {
		as = append(as, xmldoc.Element{
			DocID: 1, Start: uint32(i + 1), End: uint32(10000 - i), Level: uint16(i + 1),
		})
	}
	for i := 0; i < 100; i++ {
		ds = append(ds, xmldoc.Element{
			DocID: 1, Start: uint32(100 + 2*i), End: uint32(100 + 2*i + 1), Level: 60,
		})
	}
	pool := newPool(t, 512, 256)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)

	var cStack, cMPMG metrics.Counters
	want := Reference(AncestorDescendant, as, ds)
	var got []Pair
	if err := StackTreeDesc(AncestorDescendant, fa.list, fd.list, Collect(&got), &cStack); err != nil {
		t.Fatal(err)
	}
	samePairs(t, "StackTreeDesc", got, want)
	got = nil
	if err := MPMGJN(AncestorDescendant, fa.list, fd.list, Collect(&got), &cMPMG); err != nil {
		t.Fatal(err)
	}
	samePairs(t, "MPMGJN", got, want)
	if cMPMG.ElementsScanned <= cStack.ElementsScanned {
		t.Errorf("MPMGJN scanned %d, stack scanned %d; expected rescanning overhead",
			cMPMG.ElementsScanned, cStack.ElementsScanned)
	}
}

func TestNoPinLeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	as, ds := genDoc(rng, 100, 150, 8)
	pool := newPool(t, 512, 256)
	fa := buildFixture(t, pool, as)
	fd := buildFixture(t, pool, ds)
	emit := func(a, d xmldoc.Element) {}
	if err := StackTreeDesc(AncestorDescendant, fa.list, fd.list, emit, nil); err != nil {
		t.Fatal(err)
	}
	if err := MPMGJN(AncestorDescendant, fa.list, fd.list, emit, nil); err != nil {
		t.Fatal(err)
	}
	if err := BPlus(AncestorDescendant, fa.bt, fd.bt, emit, nil); err != nil {
		t.Fatal(err)
	}
	if err := XRStack(AncestorDescendant, fa.xr, fd.xr, emit, nil); err != nil {
		t.Fatal(err)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Errorf("leaked %d pins", n)
	}
}
