package metrics

import (
	"strings"
	"testing"
	"time"

	"xrtree/internal/obs"
)

func TestAddAccumulates(t *testing.T) {
	a := Counters{ElementsScanned: 1, BufferMisses: 2, PhysicalReads: 3, Elapsed: time.Second}
	b := Counters{ElementsScanned: 10, BufferHits: 5, OutputPairs: 7}
	a.Add(&b)
	if a.ElementsScanned != 11 || a.BufferMisses != 2 || a.BufferHits != 5 ||
		a.OutputPairs != 7 || a.PhysicalReads != 3 || a.Elapsed != time.Second {
		t.Errorf("Add result wrong: %+v", a)
	}
	a.Add(nil) // must not panic
}

func TestReset(t *testing.T) {
	c := Counters{ElementsScanned: 5, Elapsed: time.Minute}
	c.Reset()
	if c != (Counters{}) {
		t.Errorf("Reset left %+v", c)
	}
}

func TestPageAccesses(t *testing.T) {
	c := Counters{BufferHits: 3, BufferMisses: 4}
	if got := c.PageAccesses(); got != 7 {
		t.Errorf("PageAccesses = %d, want 7", got)
	}
}

func TestDerivedTime(t *testing.T) {
	m := CostModel{PerMiss: time.Millisecond, PerScan: time.Microsecond}
	c := Counters{BufferMisses: 10, ElementsScanned: 1000}
	want := 10*time.Millisecond + 1000*time.Microsecond
	if got := m.DerivedTime(&c); got != want {
		t.Errorf("DerivedTime = %v, want %v", got, want)
	}
}

func TestStringIncludesKeyFields(t *testing.T) {
	c := Counters{ElementsScanned: 42, BufferMisses: 7, Elapsed: time.Second}
	s := c.String()
	for _, want := range []string{"scanned=42", "misses=7", "elapsed="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	zero := Counters{}
	if strings.Contains(zero.String(), "elapsed=") {
		t.Error("zero counters should omit elapsed")
	}
}

func TestEmitRoutesToTracer(t *testing.T) {
	col := obs.NewCollector()
	c := Counters{Tracer: col}
	c.Emit(obs.EvSkipDesc, 42)
	if col.Count(obs.EvSkipDesc) != 1 || col.Value(obs.EvSkipDesc) != 42 {
		t.Errorf("event not delivered: count=%d value=%d",
			col.Count(obs.EvSkipDesc), col.Value(obs.EvSkipDesc))
	}
	// Nil receiver and nil tracer are both no-ops.
	(*Counters)(nil).Emit(obs.EvSkipDesc, 1)
	(&Counters{}).Emit(obs.EvSkipDesc, 1)
}

func TestNilTracerEmitZeroAllocs(t *testing.T) {
	var c Counters
	allocs := testing.AllocsPerRun(1000, func() {
		c.Emit(obs.EvPageRead, 1)
		c.ElementsScanned++
	})
	if allocs != 0 {
		t.Errorf("Emit with nil tracer allocates %.1f per op", allocs)
	}
}

func TestResetPreservesTracer(t *testing.T) {
	col := obs.NewCollector()
	c := Counters{ElementsScanned: 9, Tracer: col}
	c.Reset()
	if c.ElementsScanned != 0 {
		t.Error("Reset did not zero counters")
	}
	if c.Tracer != obs.Tracer(col) {
		t.Error("Reset dropped the tracer")
	}
}

func TestFromSnapshot(t *testing.T) {
	var o obs.Counters
	o.BufferHits.Add(3)
	o.BufferMisses.Add(4)
	o.PageEvictions.Add(2)
	o.ElementsScanned.Add(10)
	c := FromSnapshot(o.Snapshot())
	if c.BufferHits != 3 || c.BufferMisses != 4 || c.PageEvictions != 2 || c.ElementsScanned != 10 {
		t.Errorf("FromSnapshot = %+v", c)
	}
	if c.PageAccesses() != 7 {
		t.Errorf("PageAccesses = %d", c.PageAccesses())
	}
}

func TestAddIgnoresTracerAndEvictions(t *testing.T) {
	col := obs.NewCollector()
	a := Counters{PageEvictions: 1}
	b := Counters{PageEvictions: 2, Tracer: col}
	a.Add(&b)
	if a.PageEvictions != 3 {
		t.Errorf("PageEvictions = %d, want 3", a.PageEvictions)
	}
	if a.Tracer != nil {
		t.Error("Add must not copy the tracer")
	}
}

func TestTimer(t *testing.T) {
	var c Counters
	tm := StartTimer(&c)
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	if c.Elapsed < time.Millisecond {
		t.Errorf("Elapsed = %v, want ≥ 1ms", c.Elapsed)
	}
	// nil-safe
	StartTimer(nil).Stop()
}
