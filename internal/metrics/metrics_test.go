package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestAddAccumulates(t *testing.T) {
	a := Counters{ElementsScanned: 1, BufferMisses: 2, PhysicalReads: 3, Elapsed: time.Second}
	b := Counters{ElementsScanned: 10, BufferHits: 5, OutputPairs: 7}
	a.Add(&b)
	if a.ElementsScanned != 11 || a.BufferMisses != 2 || a.BufferHits != 5 ||
		a.OutputPairs != 7 || a.PhysicalReads != 3 || a.Elapsed != time.Second {
		t.Errorf("Add result wrong: %+v", a)
	}
	a.Add(nil) // must not panic
}

func TestReset(t *testing.T) {
	c := Counters{ElementsScanned: 5, Elapsed: time.Minute}
	c.Reset()
	if c != (Counters{}) {
		t.Errorf("Reset left %+v", c)
	}
}

func TestPageAccesses(t *testing.T) {
	c := Counters{BufferHits: 3, BufferMisses: 4}
	if got := c.PageAccesses(); got != 7 {
		t.Errorf("PageAccesses = %d, want 7", got)
	}
}

func TestDerivedTime(t *testing.T) {
	m := CostModel{PerMiss: time.Millisecond, PerScan: time.Microsecond}
	c := Counters{BufferMisses: 10, ElementsScanned: 1000}
	want := 10*time.Millisecond + 1000*time.Microsecond
	if got := m.DerivedTime(&c); got != want {
		t.Errorf("DerivedTime = %v, want %v", got, want)
	}
}

func TestStringIncludesKeyFields(t *testing.T) {
	c := Counters{ElementsScanned: 42, BufferMisses: 7, Elapsed: time.Second}
	s := c.String()
	for _, want := range []string{"scanned=42", "misses=7", "elapsed="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	zero := Counters{}
	if strings.Contains(zero.String(), "elapsed=") {
		t.Error("zero counters should omit elapsed")
	}
}

func TestTimer(t *testing.T) {
	var c Counters
	tm := StartTimer(&c)
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	if c.Elapsed < time.Millisecond {
		t.Errorf("Elapsed = %v, want ≥ 1ms", c.Elapsed)
	}
	// nil-safe
	StartTimer(nil).Stop()
}
