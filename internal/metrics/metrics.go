// Package metrics provides the counters used throughout the XR-tree
// reproduction to account for work the way the paper does: elements
// scanned (Tables 2 and 3), buffer-pool page misses (the dominant term of
// the elapsed-time figures), and physical I/Os.
//
// A Counters value is plain data; it is not safe for concurrent mutation.
// Every index and join algorithm takes an optional *Counters and increments
// it as it works, so a single experiment run can be audited end to end.
package metrics

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xrtree/internal/obs"
)

// Counters accumulates the cost metrics of one operation or experiment run.
type Counters struct {
	// ElementsScanned counts every element entry examined in a leaf page,
	// stab list, or sequential list. This is the metric of Tables 2 and 3.
	ElementsScanned int64

	// OutputPairs counts result pairs emitted by a join.
	OutputPairs int64

	// IndexNodeReads counts internal index node visits (B+-tree or XR-tree).
	IndexNodeReads int64

	// LeafReads counts leaf page visits.
	LeafReads int64

	// StabPageReads counts stab-list page visits (XR-tree only).
	StabPageReads int64

	// BufferHits and BufferMisses count buffer-pool lookups. Misses require
	// a physical page read and dominate elapsed time in the paper's setup.
	BufferHits   int64
	BufferMisses int64

	// PhysicalReads and PhysicalWrites count pages moved to/from the
	// backing file by the storage manager.
	PhysicalReads  int64
	PhysicalWrites int64

	// PageEvictions counts buffer-pool frames evicted to admit new pages.
	PageEvictions int64

	// ReadCalls counts read syscalls issued by the storage manager; with
	// coalesced vectored reads one call can cover several adjacent pages,
	// so PhysicalReads/ReadCalls is the coalescing ratio.
	ReadCalls int64

	// ScanEvictions and ProtectedHits describe the 2Q replacement policy:
	// frames evicted from probation without re-reference, and hits on the
	// protected (re-referenced) segment. Zero under plain LRU.
	ScanEvictions int64
	ProtectedHits int64

	// PrefetchIssued and PrefetchReads count readahead hints accepted by
	// the pool's prefetcher and the pages it actually pulled in.
	PrefetchIssued int64
	PrefetchReads  int64

	// Elapsed is wall-clock time, set by Timer or by the caller.
	Elapsed time.Duration

	// Tracer, when non-nil, receives structured events from every layer
	// the counters pass through (see internal/obs). It rides inside the
	// counter set so enabling a trace never changes a call signature; it
	// is carried, not accumulated — Add ignores it and Reset preserves it.
	Tracer obs.Tracer

	// Ctx, when non-nil, makes the operation cancelable: index iterators
	// poll it at page boundaries and the join loops poll it on a stride,
	// so a canceled or timed-out query stops consuming buffer-pool and CPU
	// resources without per-element overhead. Like Tracer it is carried,
	// not accumulated — Add ignores it and Reset preserves it.
	Ctx context.Context
}

// Interrupted returns the cancellation error of the attached context
// (context.Canceled or context.DeadlineExceeded), or nil when no context
// is attached or it is still live. Safe on a nil receiver — the disabled
// fast path is two nil checks.
func (c *Counters) Interrupted() error {
	if c == nil || c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// Emit sends one event to the attached tracer. Safe on a nil receiver and
// a nil tracer — the disabled fast path costs two nil checks and does not
// allocate (TestNilTracerEmitZeroAllocs).
func (c *Counters) Emit(kind obs.EventKind, value int64) {
	if c == nil || c.Tracer == nil {
		return
	}
	c.Tracer.Event(kind, value)
}

// TraceSink returns the attached tracer, nil-safe. It is the argument
// form the page-fetch paths pass down to the storage manager so physical
// reads are attributed to the requesting operation's span (or collector)
// rather than to the store-global tracer. The disabled fast path is one
// nil check and does not allocate.
func (c *Counters) TraceSink() obs.Tracer {
	if c == nil {
		return nil
	}
	return c.Tracer
}

// StartSpan opens a child span named name when the attached tracer can
// carry one (see obs.SpanTracer), returning nil otherwise. A nil result
// is safe to use — *Span methods are nil-safe — so callers need no
// branch beyond `defer sp.End()`. The disabled fast path is two nil
// checks plus a failed type assertion; it does not allocate.
func (c *Counters) StartSpan(name string) *obs.Span {
	if c == nil || c.Tracer == nil {
		return nil
	}
	if st, ok := c.Tracer.(obs.SpanTracer); ok {
		return st.StartSpan(name)
	}
	return nil
}

// FromSnapshot converts an atomic-counter snapshot (internal/obs) into the
// plain counter form, the view the pre-existing Stats APIs return.
func FromSnapshot(s obs.CountersSnapshot) Counters {
	return Counters{
		ElementsScanned: s.ElementsScanned,
		OutputPairs:     s.OutputPairs,
		IndexNodeReads:  s.IndexNodeReads,
		LeafReads:       s.LeafReads,
		StabPageReads:   s.StabPageReads,
		BufferHits:      s.BufferHits,
		BufferMisses:    s.BufferMisses,
		PhysicalReads:   s.PhysicalReads,
		PhysicalWrites:  s.PhysicalWrites,
		PageEvictions:   s.PageEvictions,
		ReadCalls:       s.ReadCalls,
		ScanEvictions:   s.ScanEvictions,
		ProtectedHits:   s.ProtectedHits,
		PrefetchIssued:  s.PrefetchIssued,
		PrefetchReads:   s.PrefetchReads,
	}
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	if other == nil {
		return
	}
	c.ElementsScanned += other.ElementsScanned
	c.OutputPairs += other.OutputPairs
	c.IndexNodeReads += other.IndexNodeReads
	c.LeafReads += other.LeafReads
	c.StabPageReads += other.StabPageReads
	c.BufferHits += other.BufferHits
	c.BufferMisses += other.BufferMisses
	c.PhysicalReads += other.PhysicalReads
	c.PhysicalWrites += other.PhysicalWrites
	c.PageEvictions += other.PageEvictions
	c.ReadCalls += other.ReadCalls
	c.ScanEvictions += other.ScanEvictions
	c.ProtectedHits += other.ProtectedHits
	c.PrefetchIssued += other.PrefetchIssued
	c.PrefetchReads += other.PrefetchReads
	c.Elapsed += other.Elapsed
}

// Reset zeroes all counters, preserving the attached Tracer and Ctx.
func (c *Counters) Reset() {
	tr, ctx := c.Tracer, c.Ctx
	*c = Counters{}
	c.Tracer = tr
	c.Ctx = ctx
}

// PageAccesses returns the total logical page accesses (hits + misses).
func (c *Counters) PageAccesses() int64 { return c.BufferHits + c.BufferMisses }

// CostModel converts counted events into a derived time, mirroring the
// paper's observation that elapsed time is dominated by page misses.
type CostModel struct {
	// PerMiss is the charged cost of one buffer miss (one random page read).
	PerMiss time.Duration
	// PerScan is the charged CPU cost of examining one element entry.
	PerScan time.Duration
}

// DefaultCostModel approximates a early-2000s disk (8 ms per random page
// read) and a fast in-memory comparison per scanned element. Only the
// *ratios* matter for reproducing the figures' shape.
var DefaultCostModel = CostModel{PerMiss: 8 * time.Millisecond, PerScan: 100 * time.Nanosecond}

// DerivedTime returns the modeled elapsed time for the counters under m.
func (m CostModel) DerivedTime(c *Counters) time.Duration {
	return time.Duration(c.BufferMisses)*m.PerMiss + time.Duration(c.ElementsScanned)*m.PerScan
}

// String renders the counters in a compact single-line form.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scanned=%d pairs=%d idx=%d leaf=%d stab=%d hits=%d misses=%d pr=%d pw=%d",
		c.ElementsScanned, c.OutputPairs, c.IndexNodeReads, c.LeafReads, c.StabPageReads,
		c.BufferHits, c.BufferMisses, c.PhysicalReads, c.PhysicalWrites)
	if c.PageEvictions > 0 {
		fmt.Fprintf(&b, " evict=%d", c.PageEvictions)
	}
	if c.Elapsed > 0 {
		fmt.Fprintf(&b, " elapsed=%s", c.Elapsed)
	}
	return b.String()
}

// Timer measures wall-clock time into a Counters.
type Timer struct {
	c     *Counters
	start time.Time
}

// StartTimer begins timing into c. Stop must be called to record.
func StartTimer(c *Counters) *Timer {
	return &Timer{c: c, start: time.Now()}
}

// Stop records the elapsed time since StartTimer into the counters.
func (t *Timer) Stop() {
	if t.c != nil {
		t.c.Elapsed += time.Since(t.start)
	}
}
