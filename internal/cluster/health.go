package cluster

// Per-shard health probing. One goroutine polls every shard's /healthz on
// a fixed cadence and runs a small up/down state machine per shard:
// probeFailThreshold consecutive failures mark a shard down,
// probeOkThreshold consecutive successes bring it back. The coordinator
// also feeds passive observations in (a connection-refused sub-request is
// as good a signal as a failed probe), so a killed shard is detected at
// request speed, not probe speed — the property that keeps degraded-mode
// requests from hanging on a dead node.
//
// Shards start optimistically up: a router booting ahead of its shards
// must try them rather than reject everything until the first probe round.

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

const (
	probeFailThreshold = 2
	probeOkThreshold   = 1
)

type probeState struct {
	addr  string
	up    bool
	fails int
	oks   int
}

// Prober owns the shard up/down state. Start launches the polling loop;
// Observe feeds passive results from the request path.
type Prober struct {
	interval time.Duration
	timeout  time.Duration
	client   *http.Client
	onChange func(name string, up bool)

	mu     sync.Mutex
	states map[string]*probeState
	order  []string

	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewProber creates a prober over the config's shards. onChange fires on
// every state transition (metrics gauge updates); it may be nil.
func NewProber(cfg *Config, interval, timeout time.Duration, client *http.Client, onChange func(string, bool)) *Prober {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if timeout <= 0 {
		timeout = interval
	}
	if client == nil {
		client = &http.Client{}
	}
	p := &Prober{
		interval: interval,
		timeout:  timeout,
		client:   client,
		onChange: onChange,
		states:   make(map[string]*probeState, len(cfg.Shards)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, s := range cfg.Shards {
		p.states[s.Name] = &probeState{addr: s.Addr, up: true}
		p.order = append(p.order, s.Name)
	}
	return p
}

// Start launches the probe loop; Close stops it.
func (p *Prober) Start() {
	p.started = true
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.probeAll()
			}
		}
	}()
}

// Close stops the probe loop and waits for it to exit. Closing a prober
// that was never started is a no-op.
func (p *Prober) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	if p.started {
		<-p.done
	}
}

func (p *Prober) probeAll() {
	p.mu.Lock()
	targets := make([]struct{ name, addr string }, 0, len(p.order))
	for _, name := range p.order {
		targets = append(targets, struct{ name, addr string }{name, p.states[name].addr})
	}
	p.mu.Unlock()
	for _, t := range targets {
		p.Observe(t.name, p.probeOne(t.addr))
	}
}

func (p *Prober) probeOne(addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Up reports the shard's current state; unknown shards are down.
func (p *Prober) Up(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.states[name]
	return ok && st.up
}

// Observe feeds one health observation (active probe or passive
// sub-request outcome) into the state machine.
func (p *Prober) Observe(name string, ok bool) {
	p.mu.Lock()
	st, found := p.states[name]
	if !found {
		p.mu.Unlock()
		return
	}
	var changed, nowUp bool
	if ok {
		st.oks++
		st.fails = 0
		if !st.up && st.oks >= probeOkThreshold {
			st.up, changed, nowUp = true, true, true
		}
	} else {
		st.fails++
		st.oks = 0
		if st.up && st.fails >= probeFailThreshold {
			st.up, changed, nowUp = false, true, false
		}
	}
	p.mu.Unlock()
	if changed && p.onChange != nil {
		p.onChange(name, nowUp)
	}
}
