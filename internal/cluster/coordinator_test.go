package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"xrtree/internal/xmldoc"
)

// fakeShard serves the minimal shard surface the coordinator touches:
// /healthz, /api/v1/backends with a doc_ids inventory, and /api/v1/join
// answering one pair per requested document after an optional delay.
func fakeShard(t *testing.T, docIDs []uint32, delay time.Duration) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	hits := &atomic.Int64{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/api/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"backends": []BackendInfo{{Name: "docs", Kind: "documents", Documents: len(docIDs), DocIDs: docIDs}},
		})
	})
	mux.HandleFunc("/api/v1/join", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		set, err := ParseDocSet(r.URL.Query().Get("docs"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var resp subJoinResponse
		for _, id := range docIDs {
			if !DocSetContains(set, id) {
				continue
			}
			resp.Pairs++
			resp.Sample = append(resp.Sample, subPair{
				Anc:  xmldoc.Element{DocID: id, Start: 1, End: 10, Level: 1},
				Desc: xmldoc.Element{DocID: id, Start: 2, End: 3, Level: 2},
			})
		}
		resp.Stats.ElementsScanned = resp.Pairs * 2
		json.NewEncoder(w).Encode(resp)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, hits
}

func testCoord(t *testing.T, cfg *Config, opt Options) *Coordinator {
	t.Helper()
	co, err := New(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

func TestGatherMergesInDocumentOrder(t *testing.T) {
	a, _ := fakeShard(t, []uint32{1, 2, 3}, 0)
	b, _ := fakeShard(t, []uint32{4, 5, 6}, 0)
	cfg := &Config{Shards: []ShardSpec{
		{Name: "a", Addr: a.URL, Lo: 1, Hi: 3, HasRange: true},
		{Name: "b", Addr: b.URL, Lo: 4, Hi: 6, HasRange: true},
	}}
	co := testCoord(t, cfg, Options{})

	res, err := co.Gather(context.Background(), &Request{Kind: "join", Params: url.Values{}, Limit: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "docs" || res.Docs != 6 || res.Runs != 2 || res.Shards != 2 {
		t.Fatalf("result meta = %+v", res)
	}
	if res.Total != 6 || res.Truncated || len(res.ShardsFailed) != 0 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Pairs) != 6 {
		t.Fatalf("got %d pairs, want 6", len(res.Pairs))
	}
	for i, p := range res.Pairs {
		if p.A.DocID != uint32(i+1) {
			t.Fatalf("pair %d has DocID %d — stream not in document order", i, p.A.DocID)
		}
	}
	if res.Stats.ElementsScanned != 12 {
		t.Fatalf("shard stats not folded in: %+v", res.Stats)
	}
}

func TestGatherPartialResultPolicy(t *testing.T) {
	a, _ := fakeShard(t, []uint32{1, 2}, 0)
	b, _ := fakeShard(t, []uint32{3, 4}, 0)
	cfg := &Config{Shards: []ShardSpec{
		{Name: "a", Addr: a.URL, Lo: 1, Hi: 2, HasRange: true},
		{Name: "b", Addr: b.URL, Lo: 3, Hi: 4, HasRange: true},
	}}
	co := testCoord(t, cfg, Options{SubTimeout: 2 * time.Second})

	// Warm the inventory cache while both shards are healthy, then kill b:
	// the next gather must fail b's sub-request, not its inventory fetch.
	if _, err := co.Gather(context.Background(), &Request{Kind: "join", Params: url.Values{}, Limit: 10, Partial: true}, nil); err != nil {
		t.Fatal(err)
	}
	b.Close()

	res, err := co.Gather(context.Background(), &Request{Kind: "join", Params: url.Values{}, Limit: 10, Partial: true}, nil)
	if err != nil {
		t.Fatalf("partial gather must not fail: %v", err)
	}
	if len(res.ShardsFailed) != 1 || res.ShardsFailed[0] != "b" {
		t.Fatalf("ShardsFailed = %v, want [b]", res.ShardsFailed)
	}
	if res.Total != 2 || len(res.Pairs) != 2 || res.Pairs[0].A.DocID != 1 || res.Pairs[1].A.DocID != 2 {
		t.Fatalf("healthy shard's results corrupted: %+v", res)
	}
	if co.Metrics().degraded.Load() == 0 {
		t.Fatal("degraded counter not bumped")
	}

	// Without the partial policy the same failure aborts the request with a
	// typed shard error.
	_, err = co.Gather(context.Background(), &Request{Kind: "join", Params: url.Values{}, Limit: 10}, nil)
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != "b" {
		t.Fatalf("err = %v, want *ShardError for shard b", err)
	}
}

// malformedShard answers health and inventory like a healthy shard but
// returns 200 with an undecodable body for join sub-requests.
func malformedShard(t *testing.T, docIDs []uint32) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/api/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"backends": []BackendInfo{{Name: "docs", Kind: "documents", Documents: len(docIDs), DocIDs: docIDs}},
		})
	})
	mux.HandleFunc("/api/v1/join", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{this is not json"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestGatherMalformedResponseIsShardFailure pins the errclass fix: a
// shard answering 200 with garbage must fail like any other shard
// failure — typed *ShardError without Partial, a degraded result with
// the shard listed in ShardsFailed with it — instead of leaking a naked
// decode error that reads as a client-side 400.
func TestGatherMalformedResponseIsShardFailure(t *testing.T) {
	a, _ := fakeShard(t, []uint32{1, 2}, 0)
	b := malformedShard(t, []uint32{3, 4})
	cfg := &Config{Shards: []ShardSpec{
		{Name: "a", Addr: a.URL, Lo: 1, Hi: 2, HasRange: true},
		{Name: "b", Addr: b.URL, Lo: 3, Hi: 4, HasRange: true},
	}}
	co := testCoord(t, cfg, Options{})

	res, err := co.Gather(context.Background(), &Request{Kind: "join", Params: url.Values{}, Limit: 10, Partial: true}, nil)
	if err != nil {
		t.Fatalf("partial gather must degrade, not fail: %v", err)
	}
	if len(res.ShardsFailed) != 1 || res.ShardsFailed[0] != "b" {
		t.Fatalf("ShardsFailed = %v, want [b]", res.ShardsFailed)
	}
	if res.Total != 2 || len(res.Pairs) != 2 || res.Pairs[0].A.DocID != 1 || res.Pairs[1].A.DocID != 2 {
		t.Fatalf("healthy shard's results corrupted: %+v", res)
	}

	_, err = co.Gather(context.Background(), &Request{Kind: "join", Params: url.Values{}, Limit: 10}, nil)
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != "b" {
		t.Fatalf("err = %v, want *ShardError for shard b", err)
	}
}

func TestExecHedgesToReplica(t *testing.T) {
	slow, slowHits := fakeShard(t, []uint32{1}, 300*time.Millisecond)
	fast, fastHits := fakeShard(t, []uint32{1}, 0)
	cfg := &Config{Shards: []ShardSpec{{Name: "a", Addr: slow.URL, Replica: fast.URL, Lo: 1, Hi: 1, HasRange: true}}}
	co := testCoord(t, cfg, Options{HedgeAfter: 5 * time.Millisecond, SubTimeout: 2 * time.Second})

	rec := &reqRecorder{}
	start := time.Now()
	body, err := co.exec(context.Background(), cfg.Shards[0], "/api/v1/join?docs=1", "", nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("empty winning body")
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Fatalf("hedge did not cut the tail: took %v", d)
	}
	if rec.hedges.Load() != 1 {
		t.Fatalf("hedges = %d, want 1", rec.hedges.Load())
	}
	if fastHits.Load() != 1 {
		t.Fatalf("replica hits = %d, want 1", fastHits.Load())
	}
	_ = slowHits
	if co.met.perShard["a"].hedges.Load() != 1 {
		t.Fatal("shard hedge metric not bumped")
	}
}

func TestExecFailoverRetry(t *testing.T) {
	dead, _ := fakeShard(t, []uint32{1}, 0)
	deadURL := dead.URL
	dead.Close() // connection refused: an instant retriable transport error
	live, liveHits := fakeShard(t, []uint32{1}, 0)
	cfg := &Config{Shards: []ShardSpec{{Name: "a", Addr: deadURL, Replica: live.URL, Lo: 1, Hi: 1, HasRange: true}}}
	co := testCoord(t, cfg, Options{SubTimeout: 2 * time.Second})

	rec := &reqRecorder{}
	if _, err := co.exec(context.Background(), cfg.Shards[0], "/api/v1/join?docs=1", "", nil, rec); err != nil {
		t.Fatal(err)
	}
	if rec.retries.Load() != 1 || rec.hedges.Load() != 0 {
		t.Fatalf("retries=%d hedges=%d, want 1/0", rec.retries.Load(), rec.hedges.Load())
	}
	if liveHits.Load() != 1 {
		t.Fatalf("replica hits = %d, want 1", liveHits.Load())
	}
}

func TestExecFatalStatusDoesNotRetry(t *testing.T) {
	hits := &atomic.Int64{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such backend", http.StatusNotFound)
	}))
	t.Cleanup(srv.Close)
	cfg := &Config{Shards: []ShardSpec{{Name: "a", Addr: srv.URL, Replica: srv.URL + "/", Lo: 1, Hi: 1, HasRange: true}}}
	co := testCoord(t, cfg, Options{SubTimeout: 2 * time.Second})

	rec := &reqRecorder{}
	_, err := co.exec(context.Background(), cfg.Shards[0], "/api/v1/join?docs=1", "", nil, rec)
	var se *ShardError
	if !errors.As(err, &se) || se.Retriable || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want fatal *ShardError with code 404", err)
	}
	if rec.retries.Load() != 0 || hits.Load() != 1 {
		t.Fatalf("fatal error retried: retries=%d hits=%d", rec.retries.Load(), hits.Load())
	}
}

func TestExecFailsFastOnDownShard(t *testing.T) {
	srv, hits := fakeShard(t, []uint32{1}, 0)
	cfg := &Config{Shards: []ShardSpec{{Name: "a", Addr: srv.URL, Lo: 1, Hi: 1, HasRange: true}}}
	co := testCoord(t, cfg, Options{SubTimeout: 2 * time.Second})
	for i := 0; i < probeFailThreshold; i++ {
		co.probe.Observe("a", false)
	}

	start := time.Now()
	_, err := co.exec(context.Background(), cfg.Shards[0], "/api/v1/join?docs=1", "", nil, &reqRecorder{})
	if !errors.Is(err, errShardDown) {
		t.Fatalf("err = %v, want errShardDown", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("down-shard sub-request took %v, want instant fail", d)
	}
	if hits.Load() != 0 {
		t.Fatal("down shard was contacted")
	}

	// One success flips it back up.
	co.probe.Observe("a", true)
	if _, err := co.exec(context.Background(), cfg.Shards[0], "/api/v1/join?docs=1", "", nil, &reqRecorder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHedgeDelayDerivation(t *testing.T) {
	cfg := &Config{Shards: []ShardSpec{{Name: "a", Addr: "http://a"}}}
	co := testCoord(t, cfg, Options{HedgeMin: 2 * time.Millisecond, HedgeMax: 100 * time.Millisecond})

	// Cold start: not enough samples, use the conservative maximum.
	if d := co.hedgeDelay("a"); d != 100*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want HedgeMax", d)
	}
	// Warm: 1.5×p99, clamped into [HedgeMin, HedgeMax].
	for i := 0; i < hedgeMinSamples; i++ {
		co.met.Attempt("a", 10*time.Millisecond, true)
	}
	d := co.hedgeDelay("a")
	if d < 2*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("derived hedge delay %v outside clamp", d)
	}
	if d == 100*time.Millisecond {
		t.Fatalf("derived hedge delay stuck at HedgeMax despite %d samples", hedgeMinSamples)
	}
	// Failures must not feed the histogram (a burst of instant refusals
	// would otherwise collapse the delay).
	before := d
	for i := 0; i < 100; i++ {
		co.met.Attempt("a", 0, false)
	}
	if d := co.hedgeDelay("a"); d != before {
		t.Fatalf("failed attempts moved the hedge delay %v → %v", before, d)
	}
	// A fixed -hedge-after overrides derivation entirely.
	co.opt.HedgeAfter = 7 * time.Millisecond
	if d := co.hedgeDelay("a"); d != 7*time.Millisecond {
		t.Fatalf("fixed hedge delay = %v", d)
	}
}

func TestDocSetRoundTrip(t *testing.T) {
	ids := []uint32{1, 2, 3, 7, 9, 10, 11, 40}
	s := FormatDocSet(ids)
	if s != "1-3,7,9-11,40" {
		t.Fatalf("FormatDocSet = %q", s)
	}
	set, err := ParseDocSet(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if !DocSetContains(set, id) {
			t.Fatalf("round trip lost %d", id)
		}
	}
	for _, id := range []uint32{0, 4, 6, 8, 12, 39, 41} {
		if DocSetContains(set, id) {
			t.Fatalf("round trip invented %d", id)
		}
	}
	if FormatDocSet(nil) != "" {
		t.Fatal("empty set should format empty")
	}
	if _, err := ParseDocSet("1-3,,5"); err == nil {
		t.Fatal("want error for empty docs= entry")
	}
}
