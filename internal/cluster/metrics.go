package cluster

// Router-side cluster metrics: per-shard sub-request accounting plus the
// request-level degraded counter, exported on the existing /metrics
// exposition as the xr_cluster_* families and as the /api/v1/cluster
// status document xrblast scrapes for the bench JSON cluster section.

import (
	"sync/atomic"
	"time"

	"xrtree"
	"xrtree/internal/obs"
)

// ShardMetrics accumulates one shard's router-observed accounting.
type ShardMetrics struct {
	up       atomic.Bool
	subs     atomic.Int64  // sub-request attempts (including hedges/retries)
	failures atomic.Int64  // attempts that did not return 200
	hedges   atomic.Int64  // hedged attempts fired after the delay
	retries  atomic.Int64  // failover attempts after a retriable error
	lat      obs.Histogram // successful-attempt latency, ns
}

// Metrics is the router's cluster accounting, fixed at construction to the
// config's shard set. All methods are safe for concurrent use.
type Metrics struct {
	col      *obs.Collector // EvCluster* event kinds
	degraded atomic.Int64   // requests answered with shards_failed
	order    []string
	perShard map[string]*ShardMetrics
}

// NewMetrics creates the accounting for the config's shards (all up).
func NewMetrics(cfg *Config) *Metrics {
	m := &Metrics{col: obs.NewCollector(), perShard: make(map[string]*ShardMetrics, len(cfg.Shards))}
	for _, s := range cfg.Shards {
		sm := &ShardMetrics{}
		sm.up.Store(true)
		m.perShard[s.Name] = sm
		m.order = append(m.order, s.Name)
	}
	return m
}

// Collector exposes the cluster event collector (EvCluster* kinds).
func (m *Metrics) Collector() *obs.Collector { return m.col }

// SetUp records a shard state transition (driven by the prober).
func (m *Metrics) SetUp(name string, up bool) {
	if sm := m.perShard[name]; sm != nil {
		sm.up.Store(up)
	}
}

// Attempt records one sub-request attempt's outcome; successful attempts
// feed the latency histogram the hedge delay derives its p99 from.
func (m *Metrics) Attempt(name string, d time.Duration, ok bool) {
	sm := m.perShard[name]
	if sm == nil {
		return
	}
	sm.subs.Add(1)
	if ok {
		sm.lat.Observe(d.Nanoseconds())
		m.col.Event(obs.EvClusterSub, d.Nanoseconds())
	} else {
		sm.failures.Add(1)
	}
}

// Hedge records one hedged attempt against the shard.
func (m *Metrics) Hedge(name string) {
	if sm := m.perShard[name]; sm != nil {
		sm.hedges.Add(1)
	}
	m.col.Event(obs.EvClusterHedge, 1)
}

// Retry records one failover retry against the shard.
func (m *Metrics) Retry(name string) {
	if sm := m.perShard[name]; sm != nil {
		sm.retries.Add(1)
	}
	m.col.Event(obs.EvClusterRetry, 1)
}

// Degraded records one request answered with a non-empty shards_failed.
func (m *Metrics) Degraded(shardsFailed int) {
	m.degraded.Add(1)
	m.col.Event(obs.EvClusterDegraded, int64(shardsFailed))
}

// p99 returns the shard's successful sub-request p99 in nanoseconds and
// the sample count it rests on.
func (m *Metrics) p99(name string) (ns int64, samples int64) {
	sm := m.perShard[name]
	if sm == nil {
		return 0, 0
	}
	return sm.lat.Quantile(0.99), sm.lat.Count()
}

func summarize(h *obs.Histogram) xrtree.LatencySummary {
	if h.Count() == 0 {
		return xrtree.LatencySummary{}
	}
	const msPerNs = 1e-6
	return xrtree.LatencySummary{
		Count:  h.Count(),
		MeanMS: h.Mean() * msPerNs,
		P50MS:  float64(h.Quantile(0.50)) * msPerNs,
		P90MS:  float64(h.Quantile(0.90)) * msPerNs,
		P99MS:  float64(h.Quantile(0.99)) * msPerNs,
		MaxMS:  float64(h.Quantile(1)) * msPerNs,
	}
}

// ShardStatus is one shard's entry in the /api/v1/cluster document.
type ShardStatus struct {
	Name        string                `json:"name"`
	Addr        string                `json:"addr"`
	Replica     string                `json:"replica,omitempty"`
	Up          bool                  `json:"up"`
	Docs        int                   `json:"docs"`
	Subrequests int64                 `json:"subrequests"`
	Failures    int64                 `json:"failures"`
	Hedges      int64                 `json:"hedges"`
	Retries     int64                 `json:"retries"`
	Latency     xrtree.LatencySummary `json:"latency"`
}

// Status is the body of /api/v1/cluster: the router's live view of the
// fleet, scraped by xrblast for the bench JSON cluster section.
type Status struct {
	Shards   []ShardStatus `json:"shards"`
	Docs     int           `json:"docs"`
	Degraded int64         `json:"degraded"`
}

// WriteProm renders the xr_cluster_* families onto the shared Prometheus
// writer: the per-shard up gauge, attempt/failure/hedge/retry counters,
// the sub-request latency histograms, and the degraded-response counter.
func (m *Metrics) WriteProm(p *obs.PromWriter) {
	label := func(name string) obs.PromLabel { return obs.PromLabel{Name: "shard", Value: name} }
	for _, name := range m.order {
		up := 0.0
		if m.perShard[name].up.Load() {
			up = 1.0
		}
		p.Gauge("xr_cluster_shard_up", "Shard health as seen by the router (1 up, 0 down).", up, label(name))
	}
	for _, name := range m.order {
		p.Counter("xr_cluster_subrequests_total", "Router-to-shard sub-request attempts, including hedges and retries.",
			float64(m.perShard[name].subs.Load()), label(name))
	}
	for _, name := range m.order {
		p.Counter("xr_cluster_subrequest_failures_total", "Sub-request attempts that did not return 200.",
			float64(m.perShard[name].failures.Load()), label(name))
	}
	for _, name := range m.order {
		p.Counter("xr_cluster_hedges_total", "Hedged sub-requests fired after the p99-derived delay.",
			float64(m.perShard[name].hedges.Load()), label(name))
	}
	for _, name := range m.order {
		p.Counter("xr_cluster_retries_total", "Failover retries after retriable sub-request errors.",
			float64(m.perShard[name].retries.Load()), label(name))
	}
	for _, name := range m.order {
		p.Histogram("xr_cluster_subrequest_latency", "Successful sub-request latency per shard, ns.",
			m.perShard[name].lat.Snapshot(), label(name))
	}
	p.Counter("xr_cluster_degraded_total", "Requests answered degraded (non-empty shards_failed).",
		float64(m.degraded.Load()))
}
