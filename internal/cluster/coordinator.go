package cluster

// The scatter-gather coordinator: the router-side engine behind
// /api/v1/join and /api/v1/query in cluster mode.
//
// A request decomposes by the placement function into "runs" — maximal
// stretches of the global DocId-sorted document list owned by the same
// shard — and each run becomes one join.Task fetching that shard's
// sub-join over exactly those documents. The tasks then flow through
// join.Parallel, the same chunked head-streaming ordered merge that backs
// single-node parallel joins: task order is ascending DocId, so the merged
// stream is byte-identical to the single-node join over the union of the
// fleet's documents (the equivalence the router tests assert).
//
// Failure handling is per-request: with the partial-result policy on, a
// failed shard's documents drop out and the response carries the shard in
// shards_failed; with it off, the first ShardError aborts the gather.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"xrtree/internal/join"
	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/xmldoc"
)

// Options tunes the coordinator's robustness machinery.
type Options struct {
	// SubTimeout bounds each router→shard sub-request (default 5s).
	SubTimeout time.Duration
	// HedgeAfter is a fixed hedge delay; 0 derives the delay from the
	// shard's successful-attempt p99 (see hedge.go).
	HedgeAfter time.Duration
	// HedgeMin / HedgeMax clamp the derived hedge delay (defaults 1ms and
	// 500ms); HedgeMax is also the cold-start delay before enough samples.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// Fanout is the number of concurrent sub-requests (default 8).
	Fanout int
	// ProbeInterval / ProbeTimeout drive the /healthz poller (default
	// 500ms; timeout defaults to the interval).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// InventoryTTL caches each shard's /api/v1/backends document inventory
	// (default 2s); membership is static, so staleness only delays seeing
	// newly loaded documents.
	InventoryTTL time.Duration
	// Client is the HTTP client for probes and sub-requests.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.SubTimeout <= 0 {
		o.SubTimeout = 5 * time.Second
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = time.Millisecond
	}
	if o.HedgeMax <= 0 {
		o.HedgeMax = 500 * time.Millisecond
	}
	if o.HedgeMax < o.HedgeMin {
		o.HedgeMax = o.HedgeMin
	}
	if o.Fanout <= 0 {
		o.Fanout = 8
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval
	}
	if o.InventoryTTL <= 0 {
		o.InventoryTTL = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// BackendInfo is the slice of a shard's /api/v1/backends inventory the
// coordinator consumes, and the router's aggregated re-export of it.
type BackendInfo struct {
	Name      string   `json:"name"`
	Kind      string   `json:"kind"`
	Documents int      `json:"documents,omitempty"`
	DocIDs    []uint32 `json:"doc_ids,omitempty"`
}

type shardState struct {
	spec ShardSpec

	mu      sync.Mutex
	inv     []BackendInfo
	fetched time.Time
}

// Coordinator owns the router's view of the fleet: placement ring, health
// prober, per-shard metrics, and the scatter-gather execution itself.
type Coordinator struct {
	opt    Options
	cfg    *Config
	ring   *Ring
	met    *Metrics
	probe  *Prober
	client *http.Client
	shards []*shardState
	byName map[string]*shardState
}

// New builds a coordinator over a validated config. An invalid config —
// notably overlapping explicit ownership claims — is refused here, which
// is what keeps a misconfigured router from ever serving double-counted
// results.
func New(cfg *Config, opt Options) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	co := &Coordinator{
		opt:    opt,
		cfg:    cfg,
		ring:   NewRing(cfg),
		met:    NewMetrics(cfg),
		client: opt.Client,
		byName: make(map[string]*shardState, len(cfg.Shards)),
	}
	co.probe = NewProber(cfg, opt.ProbeInterval, opt.ProbeTimeout, co.client, co.met.SetUp)
	for i := range cfg.Shards {
		sh := &shardState{spec: cfg.Shards[i]}
		co.shards = append(co.shards, sh)
		co.byName[sh.spec.Name] = sh
	}
	return co, nil
}

// Start launches the health probe loop.
func (co *Coordinator) Start() { co.probe.Start() }

// Close stops the probe loop and drops idle connections.
func (co *Coordinator) Close() {
	co.probe.Close()
	co.client.CloseIdleConnections()
}

// Metrics exposes the router-side cluster accounting for /metrics.
func (co *Coordinator) Metrics() *Metrics { return co.met }

// Ring exposes the placement function (used by tests and status).
func (co *Coordinator) Ring() *Ring { return co.ring }

// inventory returns the shard's backend inventory, from the TTL cache when
// fresh. A failed fetch falls back to any stale cache — membership is
// static, so an old inventory is still a correct document list — and only
// errors when the shard has never answered.
func (co *Coordinator) inventory(ctx context.Context, sh *shardState) ([]BackendInfo, error) {
	sh.mu.Lock()
	if sh.inv != nil && time.Since(sh.fetched) < co.opt.InventoryTTL {
		inv := sh.inv
		sh.mu.Unlock()
		return inv, nil
	}
	sh.mu.Unlock()

	list, err := co.fetchBackends(ctx, sh.spec.Addr)
	if err != nil {
		sh.mu.Lock()
		stale := sh.inv
		sh.mu.Unlock()
		if stale != nil {
			return stale, nil
		}
		return nil, err
	}
	sh.mu.Lock()
	sh.inv = list
	sh.fetched = time.Now()
	sh.mu.Unlock()
	return list, nil
}

func (co *Coordinator) fetchBackends(ctx context.Context, addr string) ([]BackendInfo, error) {
	ictx, cancel := context.WithTimeout(ctx, co.opt.SubTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ictx, http.MethodGet, addr+"/api/v1/backends", nil)
	if err != nil {
		return nil, err
	}
	resp, err := co.client.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("backends fetch: HTTP %d", resp.StatusCode)
	}
	var wrap struct {
		Backends []BackendInfo `json:"backends"`
	}
	if err := json.Unmarshal(body, &wrap); err != nil {
		return nil, fmt.Errorf("backends fetch: %w", err)
	}
	return wrap.Backends, nil
}

// Backends aggregates the fleet's inventory for the router's own
// /api/v1/backends: per backend name, the union of owned documents.
func (co *Coordinator) Backends(ctx context.Context) []BackendInfo {
	agg := make(map[string]*BackendInfo)
	var order []string
	for _, sh := range co.shards {
		inv, err := co.inventory(ctx, sh)
		if err != nil {
			continue
		}
		for _, b := range inv {
			e := agg[b.Name]
			if e == nil {
				e = &BackendInfo{Name: b.Name, Kind: b.Kind}
				agg[b.Name] = e
				order = append(order, b.Name)
			}
			for _, id := range b.DocIDs {
				if owner, ok := co.ring.Owner(id); ok && owner == sh.spec.Name {
					e.DocIDs = append(e.DocIDs, id)
				}
			}
		}
	}
	sort.Strings(order)
	out := make([]BackendInfo, 0, len(order))
	for _, name := range order {
		e := agg[name]
		sort.Slice(e.DocIDs, func(i, j int) bool { return e.DocIDs[i] < e.DocIDs[j] })
		e.Documents = len(e.DocIDs)
		out = append(out, *e)
	}
	return out
}

// Status is the router's live fleet view, served on /api/v1/cluster. Docs
// counts come from the inventory cache; they are 0 until first use.
func (co *Coordinator) Status() Status {
	st := Status{Degraded: co.met.degraded.Load()}
	for _, sh := range co.shards {
		name := sh.spec.Name
		owned := make(map[uint32]bool)
		sh.mu.Lock()
		for _, b := range sh.inv {
			for _, id := range b.DocIDs {
				if owner, ok := co.ring.Owner(id); ok && owner == name {
					owned[id] = true
				}
			}
		}
		sh.mu.Unlock()
		sm := co.met.perShard[name]
		st.Shards = append(st.Shards, ShardStatus{
			Name:        name,
			Addr:        sh.spec.Addr,
			Replica:     sh.spec.Replica,
			Up:          sm.up.Load(),
			Docs:        len(owned),
			Subrequests: sm.subs.Load(),
			Failures:    sm.failures.Load(),
			Hedges:      sm.hedges.Load(),
			Retries:     sm.retries.Load(),
			Latency:     summarize(&sm.lat),
		})
		st.Docs += len(owned)
	}
	return st
}

// Request is one scatter-gather request as seen by the coordinator. Params
// carries the already-validated, whitelisted query parameters to forward.
type Request struct {
	Kind    string // "join" or "query"
	Backend string // empty infers the unique document backend of the fleet
	Params  url.Values
	Limit   int  // sample cap; also forwarded as the sub-request limit
	Partial bool // degrade on shard failure instead of failing the request
	TraceID obs.TraceID
	Traced  bool
}

// Result is the merged outcome of one scatter-gather request. For joins,
// Pairs holds (ancestor, descendant) samples; for queries, only Pair.A is
// meaningful. The stream is in document order and byte-identical to the
// single-node result over the union of the healthy shards' documents.
type Result struct {
	Backend      string
	Pairs        []join.Pair
	Total        int64 // pairs (or matches) across the fleet, pre-limit
	Truncated    bool
	Stats        metrics.Counters
	Docs         int // documents placed for this request
	Runs         int // contiguous same-shard stretches = sub-requests sent
	Shards       int // distinct shards asked
	ShardsFailed []string
	Hedges       int64
	Retries      int64
}

type subPair struct {
	Anc  xmldoc.Element `json:"anc"`
	Desc xmldoc.Element `json:"desc"`
}

type subStats struct {
	ElementsScanned int64 `json:"elements_scanned"`
	IndexNodeReads  int64 `json:"index_node_reads"`
	LeafReads       int64 `json:"leaf_reads"`
	StabPageReads   int64 `json:"stab_page_reads"`
}

func (s subStats) addTo(c *metrics.Counters) {
	c.ElementsScanned += s.ElementsScanned
	c.IndexNodeReads += s.IndexNodeReads
	c.LeafReads += s.LeafReads
	c.StabPageReads += s.StabPageReads
}

type subJoinResponse struct {
	Pairs  int64     `json:"pairs"`
	Sample []subPair `json:"sample"`
	Stats  subStats  `json:"stats"`
}

type subQueryResponse struct {
	Matches int              `json:"matches"`
	Sample  []xmldoc.Element `json:"sample"`
	Stats   subStats         `json:"stats"`
}

// decodeInto replays one shard response into the ordered merge: sample
// pairs go to emit (the driver serializes them into document order), and
// the shard's counts fold into the task-local counters.
func decodeInto(kind string, body []byte, emit join.EmitFunc, c *metrics.Counters) error {
	switch kind {
	case "query":
		var r subQueryResponse
		if err := json.Unmarshal(body, &r); err != nil {
			return fmt.Errorf("cluster: bad shard query response: %w", err)
		}
		for _, el := range r.Sample {
			emit(el, xmldoc.Element{})
		}
		c.OutputPairs += int64(r.Matches)
		r.Stats.addTo(c)
		return nil
	default:
		var r subJoinResponse
		if err := json.Unmarshal(body, &r); err != nil {
			return fmt.Errorf("cluster: bad shard join response: %w", err)
		}
		for _, p := range r.Sample {
			emit(p.Anc, p.Desc)
		}
		c.OutputPairs += r.Pairs
		r.Stats.addTo(c)
		return nil
	}
}

// Gather executes one scatter-gather request and merges the sub-results in
// document order. tracer (may be nil) receives the request's EvCluster*
// events and, when it is a span tracer, per-run sub-request spans whose
// ids ride the outgoing traceparent headers.
func (co *Coordinator) Gather(ctx context.Context, req *Request, tracer obs.Tracer) (*Result, error) {
	var path string
	switch req.Kind {
	case "join":
		path = "/api/v1/join"
	case "query":
		path = "/api/v1/query"
	default:
		//xrvet:errclass-ok request validation maps to 400, not a shard 502
		return nil, fmt.Errorf("cluster: unknown request kind %q", req.Kind)
	}

	var mu sync.Mutex
	failed := make(map[string]bool)

	// Inventory every shard; a shard that has never answered is failed for
	// this request (its documents cannot be placed).
	invs := make(map[*shardState][]BackendInfo, len(co.shards))
	for _, sh := range co.shards {
		inv, err := co.inventory(ctx, sh)
		if err != nil {
			if !req.Partial {
				return nil, &ShardError{Shard: sh.spec.Name, Err: err, Retriable: true}
			}
			failed[sh.spec.Name] = true
			continue
		}
		invs[sh] = inv
	}

	backend := req.Backend
	if backend == "" {
		names := make(map[string]bool)
		for _, inv := range invs {
			for _, b := range inv {
				if b.Kind == "documents" {
					names[b.Name] = true
				}
			}
		}
		if len(names) != 1 {
			//xrvet:errclass-ok ambiguous backend is a client-side request error (400)
			return nil, fmt.Errorf("cluster: cannot infer backend (%d document backends in fleet); pass backend=", len(names))
		}
		for n := range names {
			backend = n
		}
	}

	// The ownership-filtered global document list, sorted by DocId. Each
	// document appears once: the ring names exactly one owner and only the
	// owner's copy is used, so replicated or mis-loaded copies elsewhere
	// cannot double-count.
	type docOwner struct {
		id uint32
		sh *shardState
	}
	var docs []docOwner
	for sh, inv := range invs {
		for _, b := range inv {
			if b.Name != backend {
				continue
			}
			for _, id := range b.DocIDs {
				if owner, ok := co.ring.Owner(id); ok && owner == sh.spec.Name {
					docs = append(docs, docOwner{id: id, sh: sh})
				}
			}
		}
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].id < docs[j].id })

	// Runs: maximal stretches of the sorted list on the same shard. One
	// sub-request per run, pinned via docs= to exactly the run's DocIds.
	type run struct {
		sh  *shardState
		ids []uint32
	}
	var runs []run
	for _, d := range docs {
		if n := len(runs); n > 0 && runs[n-1].sh == d.sh {
			runs[n-1].ids = append(runs[n-1].ids, d.id)
			continue
		}
		runs = append(runs, run{sh: d.sh, ids: []uint32{d.id}})
	}

	base := url.Values{}
	for k, vs := range req.Params {
		base[k] = vs
	}
	base.Set("backend", backend)
	if req.Limit > 0 {
		base.Set("limit", strconv.Itoa(req.Limit))
	}
	base.Set("timeout", co.opt.SubTimeout.String())

	res := &Result{Backend: backend, Docs: len(docs), Runs: len(runs)}
	emit := func(a, d xmldoc.Element) {
		if req.Limit <= 0 || len(res.Pairs) < req.Limit {
			res.Pairs = append(res.Pairs, join.Pair{A: a, D: d})
		}
	}
	rec := &reqRecorder{}

	tasks := make([]join.Task, len(runs))
	for i := range runs {
		r := runs[i]
		q := url.Values{}
		for k, vs := range base {
			q[k] = vs
		}
		q.Set("docs", FormatDocSet(r.ids))
		pathQuery := path + "?" + q.Encode()
		tasks[i] = join.Task{DocID: r.ids[0], Run: func(emit join.EmitFunc, c *metrics.Counters) error {
			tp := ""
			if req.Traced {
				// The driver gave this task its own span; its id on the
				// wire makes the shard's server-side trace a child of this
				// router request.
				if sp, ok := c.Tracer.(*obs.Span); ok {
					tp = obs.Traceparent(req.TraceID, sp.ID(), true)
				}
			}
			tctx := c.Ctx
			if tctx == nil {
				tctx = ctx
			}
			body, err := co.exec(tctx, r.sh.spec, pathQuery, tp, c, rec)
			if err != nil {
				mu.Lock()
				failed[r.sh.spec.Name] = true
				mu.Unlock()
				if req.Partial {
					return nil
				}
				return err
			}
			if derr := decodeInto(req.Kind, body, emit, c); derr != nil {
				// A malformed response is a shard failure, not a client
				// error: it must cross the boundary typed so the router
				// answers 502, and it must honor the partial-result
				// policy like any other failed shard.
				mu.Lock()
				failed[r.sh.spec.Name] = true
				mu.Unlock()
				if req.Partial {
					return nil
				}
				return &ShardError{Shard: r.sh.spec.Name, Err: derr}
			}
			return nil
		}}
	}

	st := metrics.Counters{Tracer: tracer, Ctx: ctx}
	start := time.Now()
	if err := join.Parallel(tasks, join.Options{Workers: co.opt.Fanout}, emit, &st); err != nil {
		return nil, err
	}
	st.Elapsed = time.Since(start)

	res.Total = st.OutputPairs
	res.Truncated = res.Total > int64(len(res.Pairs))
	res.Stats = st
	shardSet := make(map[string]bool)
	for _, r := range runs {
		shardSet[r.sh.spec.Name] = true
	}
	res.Shards = len(shardSet)
	for name := range failed {
		res.ShardsFailed = append(res.ShardsFailed, name)
	}
	sort.Strings(res.ShardsFailed)
	res.Hedges = rec.hedges.Load()
	res.Retries = rec.retries.Load()
	if len(res.ShardsFailed) > 0 {
		co.met.Degraded(len(res.ShardsFailed))
		if tracer != nil {
			tracer.Event(obs.EvClusterDegraded, int64(len(res.ShardsFailed)))
		}
	}
	return res, nil
}
