package cluster

// Consistent-hash placement of DocIds onto shards. Two layers:
//
//   - Explicit range claims from the config win outright: a DocId inside a
//     shard's range= claim belongs to that shard, full stop. Ranges give
//     operators deterministic placement for scripted topologies (the
//     cluster smoke test pins 1-2/3-4/5-6) and never move when membership
//     changes elsewhere.
//   - Everything else lands on a classic consistent-hash ring: each
//     unranged shard contributes ringVnodes points (hash of "name#i") on a
//     uint64 circle, and a DocId belongs to the first point clockwise from
//     its own hash. Adding or removing one of N shards therefore moves
//     only ~1/N of the unclaimed keys — the bounded-movement property the
//     ring tests assert — instead of the (N-1)/N a modulo scheme would.
//
// Hashes are FNV-1a finished with a splitmix64 avalanche so the four
// little-endian DocId bytes spread over the whole circle.

import "sort"

// ringVnodes is the number of virtual points each unranged shard places on
// the circle; 64 keeps the per-shard load imbalance in the few-percent
// range for small clusters without making ring construction noticeable.
const ringVnodes = 64

type ringPoint struct {
	hash  uint64
	shard string
}

type rangeClaim struct {
	lo, hi uint32
	shard  string
}

// Ring answers the ownership question Owner(docID) for one membership
// snapshot. Immutable after NewRing; safe for concurrent use.
type Ring struct {
	claims []rangeClaim // sorted by lo, non-overlapping (Config.Validate)
	points []ringPoint  // sorted by hash
}

// NewRing builds the placement function from a validated config.
func NewRing(cfg *Config) *Ring {
	r := &Ring{}
	for _, s := range cfg.Shards {
		if s.HasRange {
			r.claims = append(r.claims, rangeClaim{lo: s.Lo, hi: s.Hi, shard: s.Name})
			continue
		}
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashVnode(s.Name, i), shard: s.Name})
		}
	}
	sort.Slice(r.claims, func(i, j int) bool { return r.claims[i].lo < r.claims[j].lo })
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Owner returns the shard owning docID. ok is false only when the DocId is
// outside every explicit claim and no unranged shard exists to anchor the
// ring — a topology with nowhere to put the document.
func (r *Ring) Owner(docID uint32) (shard string, ok bool) {
	// Binary search the claims for the last range starting at or below id.
	if n := len(r.claims); n > 0 {
		i := sort.Search(n, func(i int) bool { return r.claims[i].lo > docID })
		if i > 0 && docID <= r.claims[i-1].hi {
			return r.claims[i-1].shard, true
		}
	}
	if len(r.points) == 0 {
		return "", false
	}
	h := hashDoc(docID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: clockwise past the top of the circle
	}
	return r.points[i].shard, true
}

// fnv1a is the 64-bit FNV-1a running hash.
func fnv1a(h uint64, b byte) uint64 {
	const prime = 1099511628211
	return (h ^ uint64(b)) * prime
}

const fnvOffset = 14695981039346656037

// mix64 is the splitmix64 finalizer: FNV alone leaves sequential integer
// keys clustered; the avalanche spreads them over the circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashDoc(id uint32) uint64 {
	h := uint64(fnvOffset)
	h = fnv1a(h, byte(id))
	h = fnv1a(h, byte(id>>8))
	h = fnv1a(h, byte(id>>16))
	h = fnv1a(h, byte(id>>24))
	return mix64(h)
}

func hashVnode(name string, i int) uint64 {
	h := uint64(fnvOffset)
	for j := 0; j < len(name); j++ {
		h = fnv1a(h, name[j])
	}
	h = fnv1a(h, '#')
	h = fnv1a(h, byte(i))
	h = fnv1a(h, byte(i>>8))
	return mix64(h)
}
