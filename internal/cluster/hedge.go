package cluster

// Sub-request execution with tail-latency hedging and failover retry.
//
// One exec call owns one router→shard sub-request. It races at most two
// HTTP attempts under a shared per-sub-request deadline:
//
//   - The primary attempt goes to the shard's address immediately.
//   - If it has not answered after the hedge delay — a fixed -hedge-after,
//     or clamp(1.5×p99, HedgeMin, HedgeMax) derived from the shard's own
//     successful-attempt latency histogram once it holds enough samples —
//     a hedged attempt fires at the replica (or the primary again when no
//     replica is configured). First 200 wins; the loser is cancelled.
//   - A retriable failure (transport error, 5xx, 429) with no other
//     attempt in flight triggers an immediate failover retry to the next
//     untried endpoint. Fatal failures (4xx, deadline) return at once.
//
// Only transport failures feed the passive health state machine — a slow
// shard is not a dead shard — and only successes feed the latency
// histogram, so a burst of instant connection-refused errors cannot
// collapse the p99-derived hedge delay to zero.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
)

// hedgeMinSamples is the successful-attempt count a shard's histogram must
// hold before its p99 is trusted to derive the hedge delay; below it the
// conservative HedgeMax is used.
const hedgeMinSamples = 16

// errShardDown is the fail-fast error for sub-requests to a shard the
// health state machine currently marks down.
var errShardDown = errors.New("shard marked down")

// ShardError is the typed failure of one shard's sub-request, carrying the
// retriable-vs-fatal classification. Retriable errors (transport failures,
// 5xx, 429) have already been retried by the time a ShardError escapes
// exec; the flag records how the failure was classified.
type ShardError struct {
	Shard     string
	Err       error
	Retriable bool
	Code      int // HTTP status of a failing response; 0 for transport errors
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %s: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// reqRecorder accumulates one scatter-gather request's hedge and retry
// counts across its concurrent sub-requests.
type reqRecorder struct {
	hedges  atomic.Int64
	retries atomic.Int64
}

type attemptResult struct {
	body []byte
	code int
	dur  time.Duration
	err  error
}

// hedgeDelay returns how long exec waits on the primary attempt before
// firing the hedge.
func (co *Coordinator) hedgeDelay(name string) time.Duration {
	if co.opt.HedgeAfter > 0 {
		return co.opt.HedgeAfter
	}
	p99, n := co.met.p99(name)
	if n < hedgeMinSamples {
		return co.opt.HedgeMax
	}
	d := time.Duration(p99 + p99/2)
	if d < co.opt.HedgeMin {
		d = co.opt.HedgeMin
	}
	if d > co.opt.HedgeMax {
		d = co.opt.HedgeMax
	}
	return d
}

// attempt runs one HTTP GET and delivers its outcome; out is buffered for
// every attempt exec can launch, so a losing attempt never blocks.
func (co *Coordinator) attempt(ctx context.Context, addr, pathQuery, traceparent string, out chan<- attemptResult) {
	start := time.Now()
	fail := func(err error) { out <- attemptResult{err: err, dur: time.Since(start)} }
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+pathQuery, nil)
	if err != nil {
		fail(err)
		return
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := co.client.Do(req)
	if err != nil {
		fail(err)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fail(err)
		return
	}
	out <- attemptResult{body: body, code: resp.StatusCode, dur: time.Since(start)}
}

// classify turns one attempt's outcome into the typed retriable-vs-fatal
// error. Transport errors are retriable (the replica may be fine); 5xx and
// 429 are retriable (overload or shard-local fault); other HTTP statuses
// are fatal (the request itself is wrong and a replica will agree); hitting
// the sub-request deadline is fatal (retrying would blow the budget again).
func classify(shard string, r attemptResult) *ShardError {
	if r.err != nil {
		retriable := !errors.Is(r.err, context.DeadlineExceeded) && !errors.Is(r.err, context.Canceled)
		return &ShardError{Shard: shard, Err: r.err, Retriable: retriable}
	}
	retriable := r.code >= 500 || r.code == http.StatusTooManyRequests
	return &ShardError{Shard: shard, Err: fmt.Errorf("HTTP %d", r.code), Retriable: retriable, Code: r.code}
}

// exec performs one sub-request against the shard, hedging and retrying as
// described in the package comment, and returns the winning 200 body.
func (co *Coordinator) exec(ctx context.Context, spec ShardSpec, pathQuery, traceparent string, jc *metrics.Counters, rec *reqRecorder) ([]byte, error) {
	name := spec.Name
	if !co.probe.Up(name) {
		// Fail fast: a down shard must cost nothing, not a timeout — this
		// is what keeps degraded-mode requests from hanging on a dead node.
		return nil, &ShardError{Shard: name, Err: errShardDown, Retriable: true}
	}
	actx, cancel := context.WithTimeout(ctx, co.opt.SubTimeout)
	defer cancel()

	endpoints := []string{spec.Addr}
	if spec.Replica != "" && spec.Replica != spec.Addr {
		endpoints = append(endpoints, spec.Replica)
	}
	const maxAttempts = 2
	results := make(chan attemptResult, maxAttempts)
	launched, inflight := 0, 0
	launch := func() {
		addr := endpoints[launched%len(endpoints)]
		launched++
		inflight++
		go co.attempt(actx, addr, pathQuery, traceparent, results)
	}
	launch()

	hedge := time.NewTimer(co.hedgeDelay(name))
	defer hedge.Stop()

	for {
		select {
		case <-hedge.C:
			if inflight == 1 && launched < maxAttempts {
				co.met.Hedge(name)
				rec.hedges.Add(1)
				if jc != nil {
					jc.Emit(obs.EvClusterHedge, 1)
				}
				launch()
			}
		case r := <-results:
			inflight--
			if r.err == nil && r.code == http.StatusOK {
				co.met.Attempt(name, r.dur, true)
				co.probe.Observe(name, true)
				if jc != nil {
					jc.Emit(obs.EvClusterSub, r.dur.Nanoseconds())
				}
				return r.body, nil
			}
			se := classify(name, r)
			co.met.Attempt(name, r.dur, false)
			if r.err != nil && se.Retriable && actx.Err() == nil {
				co.probe.Observe(name, false)
			}
			if inflight > 0 {
				continue // the hedged attempt may still win
			}
			if se.Retriable && launched < maxAttempts && actx.Err() == nil {
				co.met.Retry(name)
				rec.retries.Add(1)
				if jc != nil {
					jc.Emit(obs.EvClusterRetry, 1)
				}
				launch()
				continue
			}
			return nil, se
		case <-actx.Done():
			return nil, &ShardError{Shard: name, Err: actx.Err()}
		}
	}
}
