package cluster

// DocSet is the wire form of an explicit document selection: the docs=
// request parameter a router sub-request pins a shard to, e.g.
// "1-3,7,9-12". The router compresses each run's exact owned DocIds into
// this form (FormatDocSet), so a sub-request never names a document its
// shard does not own — which is what lets the shard side treat an
// explicitly requested but unowned document as a misdirected request.

import (
	"sort"
	"strings"
)

// DocRange is one inclusive DocId interval of a DocSet.
type DocRange struct {
	Lo, Hi uint32
}

// ParseDocSet parses a comma-separated list of DocId ranges ("1-3,7").
// The result is sorted by Lo; ranges may touch but are kept as given.
func ParseDocSet(s string) ([]DocRange, error) {
	parts := strings.Split(s, ",")
	set := make([]DocRange, 0, len(parts))
	for _, part := range parts {
		lo, hi, err := ParseDocRange(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		set = append(set, DocRange{Lo: lo, Hi: hi})
	}
	sort.Slice(set, func(i, j int) bool { return set[i].Lo < set[j].Lo })
	return set, nil
}

// DocSetContains reports whether id falls in any range of a sorted set.
func DocSetContains(set []DocRange, id uint32) bool {
	i := sort.Search(len(set), func(i int) bool { return set[i].Lo > id })
	return i > 0 && id <= set[i-1].Hi
}

// FormatDocSet compresses an ascending DocId list into the docs= wire
// form, merging numerically consecutive ids into ranges.
func FormatDocSet(ids []uint32) string {
	var b strings.Builder
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		writeUint(&b, ids[i])
		if j > i {
			b.WriteByte('-')
			writeUint(&b, ids[j])
		}
		i = j + 1
	}
	return b.String()
}

func writeUint(b *strings.Builder, v uint32) {
	var buf [10]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(buf[i:])
}
