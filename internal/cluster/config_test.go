package cluster

import (
	"errors"
	"strings"
	"testing"
)

func TestParseConfig(t *testing.T) {
	in := `
# the smoke-test fleet
a localhost:9001 replica=localhost:9101 range=1-2
b http://localhost:9002/ range=3-4

c localhost:9003
`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(cfg.Shards))
	}
	a := cfg.Shard("a")
	if a == nil || a.Addr != "http://localhost:9001" || a.Replica != "http://localhost:9101" {
		t.Fatalf("shard a = %+v", a)
	}
	if !a.HasRange || a.Lo != 1 || a.Hi != 2 {
		t.Fatalf("shard a range = %+v", a)
	}
	b := cfg.Shard("b")
	if b == nil || b.Addr != "http://localhost:9002" {
		t.Fatalf("shard b addr = %+v", b)
	}
	c := cfg.Shard("c")
	if c == nil || c.HasRange || c.Replica != "" {
		t.Fatalf("shard c = %+v", c)
	}
	if cfg.Shard("nope") != nil {
		t.Fatal("Shard(nope) should be nil")
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"a", "want <name> <addr>"},
		{"a localhost:1 bogus", "bad option"},
		{"a localhost:1 color=red", "unknown option"},
		{"a localhost:1 range=9-3", "lo > hi"},
		{"a localhost:1\na localhost:2", "duplicate shard name"},
		{"", "no shards"},
	}
	for _, tc := range cases {
		_, err := ParseConfig(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseConfig(%q) err = %v, want substring %q", tc.in, err, tc.want)
		}
	}

	// Malformed lines carry their line number in a typed ConfigError.
	_, err := ParseConfig(strings.NewReader("a localhost:1\n\nb localhost:2 k=v"))
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Line != 3 {
		t.Fatalf("err = %v, want *ConfigError at line 3", err)
	}
}

func TestOverlapRefused(t *testing.T) {
	in := "a localhost:1 range=1-4\nb localhost:2 range=4-6"
	_, err := ParseConfig(strings.NewReader(in))
	var oe *OverlapError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverlapError", err)
	}
	if oe.ShardA != "a" || oe.ShardB != "b" || oe.Lo != 4 || oe.Hi != 4 {
		t.Fatalf("overlap = %+v", oe)
	}

	// The typed error survives the file-path wrapper too (the router's
	// refuse-to-start check relies on errors.As through it).
	if _, err := ParseConfigFile("/nonexistent/cluster.conf"); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestParseDocRange(t *testing.T) {
	if lo, hi, err := ParseDocRange("5"); err != nil || lo != 5 || hi != 5 {
		t.Fatalf("ParseDocRange(5) = %d,%d,%v", lo, hi, err)
	}
	if lo, hi, err := ParseDocRange("3-7"); err != nil || lo != 3 || hi != 7 {
		t.Fatalf("ParseDocRange(3-7) = %d,%d,%v", lo, hi, err)
	}
	for _, bad := range []string{"7-3", "x", "1-", "-2", ""} {
		if _, _, err := ParseDocRange(bad); err == nil {
			t.Errorf("ParseDocRange(%q): want error", bad)
		}
	}
}
