package cluster

import "testing"

const ringTestDocs = 10000

func ringConfig(names ...string) *Config {
	cfg := &Config{}
	for _, n := range names {
		cfg.Shards = append(cfg.Shards, ShardSpec{Name: n, Addr: "http://" + n})
	}
	return cfg
}

// Placement is a pure function of the membership: two rings built from the
// same config agree on every DocId.
func TestRingDeterministic(t *testing.T) {
	cfg := ringConfig("a", "b", "c")
	r1, r2 := NewRing(cfg), NewRing(cfg)
	for id := uint32(1); id <= ringTestDocs; id++ {
		o1, ok1 := r1.Owner(id)
		o2, ok2 := r2.Owner(id)
		if o1 != o2 || ok1 != ok2 {
			t.Fatalf("doc %d: %q/%v vs %q/%v", id, o1, ok1, o2, ok2)
		}
	}
}

// Every DocId maps to exactly one owner whenever an unranged shard anchors
// the ring, and explicit range claims always win over the ring.
func TestRingEveryDocOwned(t *testing.T) {
	cfg := ringConfig("a", "b", "c")
	cfg.Shards = append(cfg.Shards, ShardSpec{Name: "pinned", Addr: "http://pinned", Lo: 100, Hi: 199, HasRange: true})
	r := NewRing(cfg)
	counts := make(map[string]int)
	for id := uint32(1); id <= ringTestDocs; id++ {
		owner, ok := r.Owner(id)
		if !ok {
			t.Fatalf("doc %d: no owner", id)
		}
		if id >= 100 && id <= 199 {
			if owner != "pinned" {
				t.Fatalf("doc %d inside the explicit claim owned by %q", id, owner)
			}
		} else if owner == "pinned" {
			t.Fatalf("doc %d outside the claim landed on the ranged shard", id)
		}
		counts[owner]++
	}
	// The vnode count must spread load across all unranged shards; exact
	// balance is not required, but no shard may be starved.
	for _, n := range []string{"a", "b", "c"} {
		if counts[n] == 0 {
			t.Fatalf("shard %s owns nothing: %v", n, counts)
		}
	}

	// With only ranged shards, DocIds outside every claim have no owner.
	only := &Config{Shards: []ShardSpec{{Name: "x", Addr: "http://x", Lo: 1, Hi: 5, HasRange: true}}}
	if _, ok := NewRing(only).Owner(6); ok {
		t.Fatal("doc outside every claim with no ring should have no owner")
	}
	if owner, ok := NewRing(only).Owner(3); !ok || owner != "x" {
		t.Fatalf("Owner(3) = %q,%v", owner, ok)
	}
}

// Adding a fourth shard moves only a bounded fraction of the keys: the
// consistent-hash property that makes resharding cheap. A modulo scheme
// would move ~3/4 of them; the ring must stay under twice the ideal 1/4.
func TestRingBoundedMovementOnAdd(t *testing.T) {
	before := NewRing(ringConfig("a", "b", "c"))
	after := NewRing(ringConfig("a", "b", "c", "d"))
	moved := 0
	for id := uint32(1); id <= ringTestDocs; id++ {
		ob, _ := before.Owner(id)
		oa, _ := after.Owner(id)
		if ob != oa {
			moved++
			if oa != "d" {
				t.Fatalf("doc %d moved %s→%s, not to the new shard", id, ob, oa)
			}
		}
	}
	if moved == 0 {
		t.Fatal("new shard received no keys")
	}
	if limit := ringTestDocs * 2 / 4; moved > limit {
		t.Fatalf("adding 1 of 4 shards moved %d/%d keys, want ≤ %d", moved, ringTestDocs, limit)
	}
}

// Removing a shard only reassigns that shard's own keys; everything else
// stays put.
func TestRingBoundedMovementOnRemove(t *testing.T) {
	before := NewRing(ringConfig("a", "b", "c"))
	after := NewRing(ringConfig("a", "b"))
	for id := uint32(1); id <= ringTestDocs; id++ {
		ob, _ := before.Owner(id)
		oa, _ := after.Owner(id)
		if ob != "c" && oa != ob {
			t.Fatalf("doc %d owned by surviving shard %s moved to %s", id, ob, oa)
		}
		if ob == "c" && (oa != "a" && oa != "b") {
			t.Fatalf("doc %d orphaned: owner %q", id, oa)
		}
	}
}
