// Package cluster is the distributed-serving subsystem: DocId-sharded
// placement over a static set of xrserve shard nodes, and the router-side
// scatter-gather machinery that fans /api/v1/join and /api/v1/query out to
// the owning shards and stream-merges the results back in document order.
//
// Placement promotes DocId — already the parallel partition key of
// internal/join — to a placement key: the paper's join condition
// a.DocId == d.DocId means no result pair ever crosses a document, so a
// cluster-level join decomposes into per-shard sub-joins whose outputs
// concatenate, in DocId order, into exactly the single-node result stream.
//
// Membership is static, read from a -cluster config file (see ParseConfig);
// DocIds map to shards through explicit range claims or a consistent-hash
// ring (see Ring). The coordinator (coordinator.go) is built to survive the
// realities of a serving fleet: per-shard health probing with an up/down
// state machine (health.go), bounded per-sub-request timeouts with hedged
// retries to a replica after a p99-derived delay (hedge.go), typed
// retriable-vs-fatal error classification, and a per-request partial-result
// policy (fail, or degrade with a shards_failed field).
package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ShardSpec is one shard node of the static membership.
type ShardSpec struct {
	// Name identifies the shard; placement and metrics key on it.
	Name string
	// Addr is the shard's serving base URL (http://host:port).
	Addr string
	// Replica is an optional standby serving the same documents; hedged
	// and failover sub-requests go to it. Empty means hedges re-ask the
	// primary (still useful against tail latency, useless against loss).
	Replica string
	// Lo..Hi is an explicit DocId ownership claim. Explicit ranges win
	// over the hash ring and must not overlap across shards.
	Lo, Hi   uint32
	HasRange bool
}

// Config is the parsed static cluster membership.
type Config struct {
	Shards []ShardSpec
}

// Shard returns the spec with the given name, or nil.
func (c *Config) Shard(name string) *ShardSpec {
	for i := range c.Shards {
		if c.Shards[i].Name == name {
			return &c.Shards[i]
		}
	}
	return nil
}

// ConfigError reports a malformed cluster-config line.
type ConfigError struct {
	Line int
	Msg  string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("cluster config line %d: %s", e.Line, e.Msg)
}

// OverlapError is the typed validation error for two config entries
// claiming overlapping DocId ownership: the router must refuse to start on
// it, because both shards would serve (and double-count) the shared range.
type OverlapError struct {
	ShardA, ShardB string
	Lo, Hi         uint32
}

func (e *OverlapError) Error() string {
	return fmt.Sprintf("cluster config: shards %q and %q claim overlapping DocId ownership (%d-%d)",
		e.ShardA, e.ShardB, e.Lo, e.Hi)
}

// normalizeAddr prefixes bare host:port addresses with http://.
func normalizeAddr(a string) string {
	if strings.Contains(a, "://") {
		return strings.TrimRight(a, "/")
	}
	return "http://" + a
}

// ParseConfig reads the cluster membership file. Format, one shard per
// non-comment line:
//
//	<name> <addr> [replica=<addr>] [range=<lo>-<hi>]
//
// addr is host:port or a full base URL. Shards with an explicit range=
// claim own exactly that DocId range; shards without one join the
// consistent-hash ring covering every DocId not explicitly claimed.
func ParseConfig(r io.Reader) (*Config, error) {
	cfg := &Config{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, &ConfigError{line, fmt.Sprintf("want <name> <addr> [replica=..] [range=lo-hi], got %q", text)}
		}
		spec := ShardSpec{Name: fields[0], Addr: normalizeAddr(fields[1])}
		for _, f := range fields[2:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, &ConfigError{line, fmt.Sprintf("bad option %q (want key=value)", f)}
			}
			switch key {
			case "replica":
				spec.Replica = normalizeAddr(val)
			case "range":
				lo, hi, err := ParseDocRange(val)
				if err != nil {
					return nil, &ConfigError{line, err.Error()}
				}
				spec.Lo, spec.Hi, spec.HasRange = lo, hi, true
			default:
				return nil, &ConfigError{line, fmt.Sprintf("unknown option %q", key)}
			}
		}
		cfg.Shards = append(cfg.Shards, spec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ParseConfigFile is ParseConfig over a file path.
func ParseConfigFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cfg, err := ParseConfig(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// ParseDocRange parses a DocId range "lo-hi" (or a single "n", meaning
// n-n). It is shared with the shard-side docs= request parameter.
func ParseDocRange(s string) (lo, hi uint32, err error) {
	loS, hiS, ok := strings.Cut(s, "-")
	if !ok {
		hiS = loS
	}
	l, err1 := strconv.ParseUint(loS, 10, 32)
	h, err2 := strconv.ParseUint(hiS, 10, 32)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad DocId range %q (want lo-hi)", s)
	}
	if l > h {
		return 0, 0, fmt.Errorf("bad DocId range %q: lo > hi", s)
	}
	return uint32(l), uint32(h), nil
}

// Validate checks structural soundness: at least one shard, unique names,
// non-empty addresses, and — the property the router's correctness rests
// on — no two explicit range claims overlapping (every DocId must have at
// most one explicit owner). Overlap returns a typed *OverlapError.
func (c *Config) Validate() error {
	if len(c.Shards) == 0 {
		return errors.New("cluster config: no shards")
	}
	seen := make(map[string]bool, len(c.Shards))
	for _, s := range c.Shards {
		if s.Name == "" || s.Addr == "" {
			return fmt.Errorf("cluster config: shard with empty name or addr")
		}
		if seen[s.Name] {
			return fmt.Errorf("cluster config: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
	}
	ranged := make([]ShardSpec, 0, len(c.Shards))
	for _, s := range c.Shards {
		if s.HasRange {
			ranged = append(ranged, s)
		}
	}
	sort.Slice(ranged, func(i, j int) bool { return ranged[i].Lo < ranged[j].Lo })
	for i := 1; i < len(ranged); i++ {
		prev, cur := ranged[i-1], ranged[i]
		if cur.Lo <= prev.Hi {
			hi := prev.Hi
			if cur.Hi < hi {
				hi = cur.Hi
			}
			return &OverlapError{ShardA: prev.Name, ShardB: cur.Name, Lo: cur.Lo, Hi: hi}
		}
	}
	return nil
}
