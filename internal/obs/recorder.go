package obs

import (
	"sync/atomic"
	"time"
)

// FlightRecorder keeps the last N completed request traces in a lock-free
// ring, plus a smaller ring that pins slow outliers: a burst of fast
// requests evicts the main ring in milliseconds, but the trace you want
// after a latency spike is precisely the one that would be evicted first,
// so traces at or above the slow threshold are copied into their own ring
// that only other slow traces can recycle.
//
// Record is wait-free (one fetch-add plus one or two pointer stores);
// Snapshot walks the rings with atomic loads and never blocks writers. A
// snapshot taken during a wraparound race may briefly see a trace twice
// or miss the newest entry — acceptable for a debug endpoint, and the
// -race tests pound exactly this path.
type FlightRecorder struct {
	ring    []atomic.Pointer[TraceRecord]
	pos     atomic.Uint64
	pinned  []atomic.Pointer[TraceRecord]
	pinPos  atomic.Uint64
	slowNS  atomic.Int64
	records atomic.Int64
	slow    atomic.Int64
}

// NewFlightRecorder returns a recorder holding the last size traces and
// the last pinned slow traces (both rounded up to powers of two; minimum
// 4 and 2). The slow threshold starts disabled; set it with
// SetSlowThreshold.
func NewFlightRecorder(size, pinned int) *FlightRecorder {
	return &FlightRecorder{
		ring:   make([]atomic.Pointer[TraceRecord], ceilPow2(size, 4)),
		pinned: make([]atomic.Pointer[TraceRecord], ceilPow2(pinned, 2)),
	}
}

func ceilPow2(n, min int) int {
	if n < min {
		n = min
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SetSlowThreshold sets the duration at or above which a recorded trace
// is pinned into the slow ring. Zero or negative disables pinning.
func (r *FlightRecorder) SetSlowThreshold(d time.Duration) { r.slowNS.Store(int64(d)) }

// SlowThreshold returns the current pinning threshold.
func (r *FlightRecorder) SlowThreshold() time.Duration {
	return time.Duration(r.slowNS.Load())
}

// Record stores a completed trace, marking and pinning it when it meets
// the slow threshold. rec must not be mutated afterwards.
func (r *FlightRecorder) Record(rec *TraceRecord) {
	if rec == nil {
		return
	}
	r.records.Add(1)
	if t := r.slowNS.Load(); t > 0 && rec.DurNS >= t {
		rec.Pinned = true
		r.slow.Add(1)
		i := r.pinPos.Add(1) - 1
		r.pinned[i&uint64(len(r.pinned)-1)].Store(rec)
	}
	i := r.pos.Add(1) - 1
	r.ring[i&uint64(len(r.ring)-1)].Store(rec)
}

// RecorderStats is the recorder's own accounting, exported alongside the
// traces so a reader can tell how much history the rings represent.
type RecorderStats struct {
	Capacity       int   `json:"capacity"`
	PinnedCapacity int   `json:"pinned_capacity"`
	Recorded       int64 `json:"recorded"`
	Slow           int64 `json:"slow"`
	SlowThreshMS   int64 `json:"slow_threshold_ms"`
}

// Stats returns the recorder's accounting.
func (r *FlightRecorder) Stats() RecorderStats {
	return RecorderStats{
		Capacity:       len(r.ring),
		PinnedCapacity: len(r.pinned),
		Recorded:       r.records.Load(),
		Slow:           r.slow.Load(),
		SlowThreshMS:   r.slowNS.Load() / 1e6,
	}
}

// Snapshot returns the retained traces, newest first: the pinned slow
// ring first (its entries survive main-ring wraparound), then the main
// ring, with traces present in both reported once.
func (r *FlightRecorder) Snapshot() []*TraceRecord {
	out := make([]*TraceRecord, 0, len(r.ring)+len(r.pinned))
	seen := make(map[*TraceRecord]bool, len(r.pinned))
	collect := func(ring []atomic.Pointer[TraceRecord], pos uint64) {
		n := uint64(len(ring))
		for k := uint64(0); k < n; k++ {
			rec := ring[(pos-1-k)&(n-1)].Load()
			if rec == nil || seen[rec] {
				continue
			}
			seen[rec] = true
			out = append(out, rec)
		}
	}
	collect(r.pinned, r.pinPos.Load())
	collect(r.ring, r.pos.Load())
	return out
}
