package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1<<62 + 1, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bucket edges: BucketUpper(b) is the largest value mapping to b.
	for b := 1; b < 40; b++ {
		if got := bucketOf(BucketUpper(b)); got != b {
			t.Errorf("bucketOf(BucketUpper(%d)) = %d", b, got)
		}
		if got := bucketOf(BucketUpper(b) + 1); got != b+1 {
			t.Errorf("bucketOf(BucketUpper(%d)+1) = %d, want %d", b, got, b+1)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 107 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if m := h.Mean(); m != 107.0/5 {
		t.Errorf("mean = %v", m)
	}
	// p50 of {1,1,2,3,100}: 3rd smallest is 2, bucket [2,3] → upper 3.
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3", q)
	}
	// p100 lands in 100's bucket [64,127].
	if q := h.Quantile(1.0); q != 127 {
		t.Errorf("p100 = %d, want 127", q)
	}
	snap := h.Snapshot()
	var total int64
	for _, b := range snap.Buckets {
		total += b.N
	}
	if total != 5 {
		t.Errorf("snapshot buckets sum to %d", total)
	}
	if snap.Quantile(0.5) != 3 {
		t.Errorf("snapshot p50 = %d", snap.Quantile(0.5))
	}
	h.Reset()
	if h.Count() != 0 || len(h.Snapshot().Buckets) != 0 {
		t.Error("reset left observations")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector()
	c.Event(EvSkipDesc, 10)
	c.Event(EvSkipDesc, 20)
	c.Event(EvOutput, 7)
	c.Event(NumEvents+3, 1) // unknown kind: dropped, no panic
	if c.Count(EvSkipDesc) != 2 || c.Value(EvSkipDesc) != 30 {
		t.Errorf("SkipDesc count=%d value=%d", c.Count(EvSkipDesc), c.Value(EvSkipDesc))
	}
	if c.Value(EvOutput) != 7 {
		t.Errorf("Output value = %d", c.Value(EvOutput))
	}
	if c.Count(NumEvents+3) != 0 || c.Histogram(NumEvents) != nil {
		t.Error("unknown kinds must read as empty")
	}
	snap := c.Snapshot()
	if len(snap.Events) != 2 {
		t.Fatalf("snapshot has %d events, want 2: %v", len(snap.Events), snap.Events)
	}
	if ev := snap.Events["SkipDesc"]; ev.Count != 2 || ev.Sum != 30 {
		t.Errorf("SkipDesc snapshot = %+v", ev)
	}
	c.Reset()
	if len(c.Snapshot().Events) != 0 {
		t.Error("reset left events")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Event(EvPageRead, 1)
				c.Event(EvLeafScan, int64(i%64))
			}
		}()
	}
	wg.Wait()
	if got := c.Count(EvPageRead); got != workers*per {
		t.Errorf("PageRead count = %d, want %d", got, workers*per)
	}
	if got := c.Histogram(EvLeafScan).Count(); got != workers*per {
		t.Errorf("LeafScan observations = %d, want %d", got, workers*per)
	}
}

func TestJoinPhases(t *testing.T) {
	c := NewCollector()
	c.Event(EvAncProbe, 3)
	c.Event(EvAncProbe, 2)
	c.Event(EvSkipAnc, 100)
	c.Event(EvSkipDesc, 40)
	c.Event(EvSkipDesc, 60)
	c.Event(EvOutput, 5)
	ph := c.JoinPhases()
	if ph.AncProbes != 2 || ph.AncestorsFetched != 5 {
		t.Errorf("probes=%d fetched=%d", ph.AncProbes, ph.AncestorsFetched)
	}
	if ph.DescSkips != 2 || ph.DescSkipDistance != 100 {
		t.Errorf("descSkips=%d dist=%d", ph.DescSkips, ph.DescSkipDistance)
	}
	if ph.AncSkips != 1 || ph.AncSkipDistance != 100 || ph.OutputPairs != 5 {
		t.Errorf("phases = %+v", ph)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := NewCollector()
	c.Event(EvJoinSpan, 1234567)
	c.Event(EvStabScan, 4)
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Events["StabScan"].Sum != 4 || back.Events["JoinSpan"].Count != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestExpvarCompatibleVar(t *testing.T) {
	c := NewCollector()
	c.Event(EvPageEvict, 1)
	var v expvar.Var = c.Var() // must satisfy the expvar contract
	var parsed Snapshot
	if err := json.Unmarshal([]byte(v.String()), &parsed); err != nil {
		t.Fatalf("Var().String() is not valid JSON: %v", err)
	}
	if parsed.Events["PageEvict"].Count != 1 {
		t.Errorf("expvar snapshot = %+v", parsed)
	}
}

func TestWriteText(t *testing.T) {
	c := NewCollector()
	c.Event(EvSkipDesc, 32)
	c.Event(EvOutput, 9)
	var b strings.Builder
	if err := c.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"SkipDesc", "Output", "count=1", "sum=32"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output %q missing %q", out, want)
		}
	}
	// Output precedes SkipDesc: alphabetical, so stable across runs.
	if strings.Index(out, "Output") > strings.Index(out, "SkipDesc") {
		t.Error("WriteText order not alphabetical")
	}
}

func TestSkippingEffectiveness(t *testing.T) {
	cases := []struct {
		scanned, total int64
		want           float64
	}{
		{0, 0, 0}, {50, 100, 0.5}, {0, 100, 1}, {200, 100, 0}, {100, 100, 0},
	}
	for _, c := range cases {
		if got := SkippingEffectiveness(c.scanned, c.total); got != c.want {
			t.Errorf("SkippingEffectiveness(%d, %d) = %v, want %v", c.scanned, c.total, got, c.want)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if EvIndexDescend.String() != "IndexDescend" || EvJoinSpan.String() != "JoinSpan" {
		t.Error("event names wrong")
	}
	if (NumEvents + 1).String() != "Unknown" {
		t.Error("out-of-range kind should be Unknown")
	}
	for k := EventKind(0); k < NumEvents; k++ {
		if k.String() == "" {
			t.Errorf("event %d has no name", k)
		}
	}
}

func TestNilTracerZeroAllocs(t *testing.T) {
	// The nil fast path every instrumented call site relies on.
	var tr Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr != nil {
			tr.Event(EvPageRead, 1)
		}
	})
	if allocs != 0 {
		t.Errorf("nil tracer check allocates %.1f per op", allocs)
	}
}
