package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of fixed histogram buckets. Bucket 0 holds the
// value 0; bucket b ≥ 1 holds values in [2^(b-1), 2^b). 48 buckets cover
// every value the system produces (2^47 ns ≈ 39 hours; larger values clamp
// into the last bucket).
const NumBuckets = 48

// Histogram is a fixed-bucket power-of-two histogram. Observe is lock-free
// and safe for concurrent use; the zero value is ready to use.
//
// Power-of-two buckets trade resolution for a zero-configuration layout
// that is identical across every quantity we measure (nanoseconds, list
// lengths, skip distances), which keeps the exporters and the JSON schema
// uniform.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketOf returns the bucket index for v. Negative values count as 0.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // v in [2^(b-1), 2^b)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket b (the "le" of
// the exported form): 0 for bucket 0, 2^b − 1 otherwise.
func BucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<b - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]): the
// inclusive upper edge of the bucket containing it. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(n) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < NumBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			return BucketUpper(b)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Reset zeroes the histogram (not atomically as a set).
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Bucket is one non-empty bucket of a histogram snapshot: N observations
// with value ≤ Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, with only the
// non-empty buckets materialized.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for b := 0; b < NumBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketUpper(b), N: n})
		}
	}
	return s
}

// String renders the snapshot compactly: count, mean, and p50/p99 bounds.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50≤%d p99≤%d",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
}
