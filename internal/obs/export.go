package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// EventSnapshot is the exported state of one event kind.
type EventSnapshot struct {
	Count int64             `json:"count"`
	Sum   int64             `json:"sum"`
	Hist  HistogramSnapshot `json:"hist"`
}

// Snapshot is a point-in-time export of a Collector: every event kind that
// fired, keyed by its canonical name. It marshals directly to the JSON
// shape used by BENCH_*.json and the --stats-json flags.
type Snapshot struct {
	Events map[string]EventSnapshot `json:"events"`
}

// Snapshot exports the collector's current state. Only kinds with at least
// one event appear.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{Events: make(map[string]EventSnapshot)}
	for k := EventKind(0); k < NumEvents; k++ {
		if n := c.counts[k].Load(); n > 0 {
			s.Events[k.String()] = EventSnapshot{
				Count: n,
				Sum:   c.hists[k].Sum(),
				Hist:  c.hists[k].Snapshot(),
			}
		}
	}
	return s
}

// WriteText renders the snapshot for humans: one line per event kind, in
// stable (alphabetical) order, with count, value sum, mean and tail bounds.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Events))
	for name := range s.Events {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ev := s.Events[name]
		mean := 0.0
		if ev.Count > 0 {
			mean = float64(ev.Sum) / float64(ev.Count)
		}
		if _, err := fmt.Fprintf(w, "%-13s count=%-9d sum=%-12d mean=%.1f p50≤%d p99≤%d\n",
			name, ev.Count, ev.Sum, mean, ev.Hist.quantile(0.50), ev.Hist.quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}

// quantile is Histogram.Quantile over an already-materialized snapshot.
func (h HistogramSnapshot) quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q*float64(h.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= target {
			return b.Le
		}
	}
	if n := len(h.Buckets); n > 0 {
		return h.Buckets[n-1].Le
	}
	return 0
}

// Quantile returns an upper bound for the q-quantile of the snapshot.
func (h HistogramSnapshot) Quantile(q float64) int64 { return h.quantile(q) }

// expvarFunc adapts a snapshot producer to the expvar.Var interface
// (interface{ String() string }, where String returns valid JSON) without
// importing expvar — importing it would drag net/http and its debug
// handlers into every binary.
type expvarFunc func() string

func (f expvarFunc) String() string { return f() }

// Var returns an expvar-compatible variable: its String method renders the
// collector's live snapshot as JSON. Register it with
// expvar.Publish("xrtree", collector.Var()) to expose it on /debug/vars.
func (c *Collector) Var() interface{ String() string } {
	return expvarFunc(func() string {
		b, err := json.Marshal(c.Snapshot())
		if err != nil {
			return `{"error":"snapshot marshal failed"}`
		}
		return string(b)
	})
}
