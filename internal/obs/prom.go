package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled so the
// module stays dependency-free. PromWriter renders counters, gauges, and
// histograms; the Collector's power-of-two histograms map directly onto
// Prometheus cumulative buckets (each bucket's inclusive upper bound is
// the "le" label; a final +Inf bucket equals the sample count).
//
// PromLint (promlint.go) validates the output the way promtool's linter
// would, and is shared by the obs tests, the server tests, and the
// `xrcheckbench -promlint` CI check.

// PromLabel is one label pair of a sample.
type PromLabel struct {
	Name  string
	Value string
}

// PromWriter emits Prometheus text-format families. Errors are sticky:
// check Err once after the last write.
type PromWriter struct {
	w     io.Writer
	err   error
	typed map[string]bool
}

// NewPromWriter returns a writer targeting w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP/TYPE preamble for a family once.
func (p *PromWriter) header(name, typ, help string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	if help != "" {
		p.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

func (p *PromWriter) sample(name string, labels []PromLabel, v float64) {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	p.printf("%s %s\n", b.String(), formatValue(v))
}

// Counter emits one counter family with a single sample.
func (p *PromWriter) Counter(name, help string, v float64, labels ...PromLabel) {
	p.header(name, "counter", help)
	p.sample(name, labels, v)
}

// Gauge emits one gauge family with a single sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...PromLabel) {
	p.header(name, "gauge", help)
	p.sample(name, labels, v)
}

// Histogram emits one labeled series of a histogram family from a
// snapshot: cumulative buckets ending at +Inf, then _sum and _count. The
// +Inf bucket and _count are both the bucket total, so they agree even
// when the snapshot raced concurrent observations.
func (p *PromWriter) Histogram(name, help string, h HistogramSnapshot, labels ...PromLabel) {
	p.header(name, "histogram", help)
	bl := make([]PromLabel, len(labels)+1)
	copy(bl, labels)
	var cum int64
	for _, b := range h.Buckets {
		cum += b.N
		bl[len(labels)] = PromLabel{Name: "le", Value: strconv.FormatInt(b.Le, 10)}
		p.sample(name+"_bucket", bl, float64(cum))
	}
	bl[len(labels)] = PromLabel{Name: "le", Value: "+Inf"}
	p.sample(name+"_bucket", bl, float64(cum))
	p.sample(name+"_sum", labels, float64(h.Sum))
	p.sample(name+"_count", labels, float64(cum))
}

// CollectorEvents renders every event kind a collector has seen as one
// histogram family labeled by kind (values) plus one counter family
// (occurrences). Kinds are emitted in EventKind order, which is stable.
func (p *PromWriter) CollectorEvents(prefix string, c *Collector) {
	countName := prefix + "_events_total"
	histName := prefix + "_event_value"
	for k := EventKind(0); k < NumEvents; k++ {
		if c.Count(k) == 0 {
			continue
		}
		p.Counter(countName, "Total events recorded per kind.",
			float64(c.Count(k)), PromLabel{Name: "kind", Value: k.String()})
	}
	for k := EventKind(0); k < NumEvents; k++ {
		if c.Count(k) == 0 {
			continue
		}
		p.Histogram(histName, "Distribution of event values per kind (ns for *Span kinds).",
			c.hists[k].Snapshot(), PromLabel{Name: "kind", Value: k.String()})
	}
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
