package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// PromLint validates a Prometheus text-exposition (0.0.4) document the
// way promtool's linter would: metric and label names must be legal, every
// sample must belong to a family with a prior TYPE line, histogram buckets
// must be cumulative (monotone, ending at +Inf) with the +Inf bucket equal
// to _count, and no sample (name + label set) may repeat. It returns one
// message per problem; an empty slice means the document is clean.
//
// It lives here rather than in cmd/xrcheckbench so the serving tests, the
// obs tests, and the CI lint step all run the same checks.
func PromLint(r io.Reader) []string {
	var problems []string
	addf := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	types := make(map[string]string) // family -> declared type
	seen := make(map[string]int)     // name{labels} -> line
	type histState struct {
		lastLe   float64
		lastCum  float64
		infSeen  bool
		infValue float64
		count    float64
		hasCount bool
		line     int
	}
	hists := make(map[string]*histState) // family + non-le labels -> bucket state

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if len(fields) < 3+boolToInt(fields[1] == "TYPE") {
					addf(lineNo, "malformed %s line", fields[1])
					continue
				}
				name := fields[2]
				if !metricNameRe.MatchString(name) {
					addf(lineNo, "invalid metric name %q", name)
				}
				if fields[1] == "TYPE" {
					if _, dup := types[name]; dup {
						addf(lineNo, "duplicate TYPE for %q", name)
					}
					typ := fields[3]
					switch typ {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						addf(lineNo, "unknown type %q for %q", typ, name)
					}
					types[name] = typ
				}
			}
			continue
		}

		name, labels, value, ok := parseSample(line)
		if !ok {
			addf(lineNo, "unparseable sample %q", line)
			continue
		}
		if !metricNameRe.MatchString(name) {
			addf(lineNo, "invalid metric name %q", name)
			continue
		}
		family := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name {
				if t, declared := types[base]; declared && (t == "histogram" || t == "summary") {
					family, suffix = base, s
				}
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			addf(lineNo, "sample %q has no preceding TYPE line", name)
		}
		if typ == "histogram" && suffix == "" {
			addf(lineNo, "histogram family %q has bare sample %q", family, name)
		}
		if suffix == "_bucket" && typ != "histogram" {
			addf(lineNo, "_bucket sample %q outside a histogram family", name)
		}

		key := name + "{" + canonicalLabels(labels, false) + "}"
		if prev, dup := seen[key]; dup {
			addf(lineNo, "duplicate sample %s (first at line %d)", key, prev)
		}
		seen[key] = lineNo

		if typ == "histogram" {
			hkey := family + "{" + canonicalLabels(labels, true) + "}"
			st := hists[hkey]
			if st == nil {
				st = &histState{lastLe: math.Inf(-1)}
				hists[hkey] = st
			}
			st.line = lineNo
			switch suffix {
			case "_bucket":
				leStr, found := labelValue(labels, "le")
				if !found {
					addf(lineNo, "histogram bucket %q missing le label", name)
					break
				}
				le := math.Inf(1)
				if leStr != "+Inf" {
					var err error
					if le, err = strconv.ParseFloat(leStr, 64); err != nil {
						addf(lineNo, "bad le value %q", leStr)
						break
					}
				}
				if le <= st.lastLe {
					addf(lineNo, "bucket le=%s not increasing for %s", leStr, hkey)
				}
				if value < st.lastCum {
					addf(lineNo, "bucket counts not cumulative for %s (%g < %g)", hkey, value, st.lastCum)
				}
				st.lastLe, st.lastCum = le, value
				if math.IsInf(le, 1) {
					st.infSeen, st.infValue = true, value
				}
			case "_count":
				st.count, st.hasCount = value, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		addf(lineNo, "read: %v", err)
	}
	for hkey, st := range hists {
		if !st.infSeen {
			addf(st.line, "histogram %s has no +Inf bucket", hkey)
		}
		if st.infSeen && st.hasCount && st.infValue != st.count {
			addf(st.line, "histogram %s +Inf bucket %g != _count %g", hkey, st.infValue, st.count)
		}
	}
	return problems
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// parseSample splits one sample line into name, labels, and value. The
// optional trailing timestamp is accepted and ignored.
func parseSample(line string) (name string, labels []PromLabel, value float64, ok bool) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		name = rest[:i]
		end := strings.LastIndex(rest, "}")
		if end < i {
			return "", nil, 0, false
		}
		var lok bool
		if labels, lok = parseLabels(rest[i+1 : end]); !lok {
			return "", nil, 0, false
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", nil, 0, false
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, false
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

func parsePromLabelsError() ([]PromLabel, bool) { return nil, false }

func labelValue(labels []PromLabel, name string) (string, bool) {
	for _, l := range labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

func parseLabels(s string) ([]PromLabel, bool) {
	var out []PromLabel
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return parsePromLabelsError()
		}
		name := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(name) {
			return parsePromLabelsError()
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return parsePromLabelsError()
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return parsePromLabelsError()
		}
		out = append(out, PromLabel{Name: name, Value: val.String()})
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, true
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// canonicalLabels renders a label set sorted by name; dropLe excludes the
// le label so all buckets of one histogram series share a key.
func canonicalLabels(labels []PromLabel, dropLe bool) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		if dropLe && l.Name == "le" {
			continue
		}
		parts = append(parts, l.Name+"="+l.Value)
	}
	// insertion sort; label sets are tiny
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}
