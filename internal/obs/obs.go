// Package obs is the observability layer of the XR-tree reproduction: the
// single place that defines how the system is audited at runtime.
//
// It provides three building blocks, all dependency-free and safe for
// concurrent use:
//
//   - Counters: atomic versions of the cost counters of internal/metrics,
//     used wherever a counter set is shared between goroutines (the buffer
//     pool's always-on statistics, concurrent query sinks).
//   - Histogram: fixed-bucket (power-of-two) distributions for latencies,
//     stab-list lengths and skip distances.
//   - Tracer / Collector: a lightweight structured event stream. The
//     storage, index and join layers emit typed events (IndexDescend,
//     StabScan, LeafScan, SkipDesc, SkipAnc, PageEvict, PageRead, ...);
//     a Collector aggregates them into per-event counts and histograms
//     from which paper-grade derived metrics fall out: the per-join-phase
//     breakdown (ancestor probe vs descendant skip vs output) and the
//     skipping effectiveness that is the headline claim of Tables 2-3.
//
// The tracer is threaded through the system by riding inside the existing
// *metrics.Counters plumbing (metrics.Counters.Tracer), so enabling a trace
// never changes a function signature and a nil tracer costs two nil checks
// per event site — the zero-overhead-when-disabled fast path, verified by
// TestNilTracerZeroAllocs and BenchmarkJoinTracerOverhead.
package obs

// EventKind identifies one kind of traced event. The value carried with an
// event is kind-specific (a length, a distance, a duration in nanoseconds).
type EventKind uint8

// The event vocabulary. Each event's value is given in parentheses.
const (
	// EvIndexDescend is one root→leaf index descent (value: pages on the
	// path, i.e. the tree height). Emitted by both B+-tree and XR-tree
	// search, insert and delete paths.
	EvIndexDescend EventKind = iota
	// EvStabScan is one primary-stab-list walk during FindAncestors
	// (value: stabbed entries returned from that PSL).
	EvStabScan
	// EvLeafScan is the leaf phase of a FindAncestors probe (value: leaf
	// entries examined, including positioning reads).
	EvLeafScan
	// EvSkipDesc is one descendant-side skip — a SeekGE range query past
	// non-joining descendants (value: start-position distance skipped).
	EvSkipDesc
	// EvSkipAnc is one ancestor-side skip — B+ jumping a non-matching
	// subtree, or XR-stack seeking past the current descendant after a
	// FindAncestors probe (value: start-position distance skipped).
	EvSkipAnc
	// EvAncProbe is one FindAncestors probe of the XR-stack join
	// (value: ancestors returned).
	EvAncProbe
	// EvOutput is one batch of result pairs reported against the current
	// descendant (value: pairs emitted in the batch).
	EvOutput
	// EvPageRead is one physical page read by the storage manager
	// (value: 1). Buffer-pool hits do not emit it, so its count equals
	// the PhysicalReads counter.
	EvPageRead
	// EvPageWrite is one physical page write by the storage manager
	// (value: 1).
	EvPageWrite
	// EvPageEvict is one buffer-pool frame eviction (value: 1).
	EvPageEvict
	// EvJoinSpan closes one whole structural join (value: elapsed
	// nanoseconds) — the operation-latency histogram.
	EvJoinSpan
	// EvServeSpan closes one served request in the query-serving layer
	// (value: elapsed nanoseconds from admission to response) — the
	// request-latency histogram.
	EvServeSpan
	// EvServeQueueWait is one admitted request's wait for an execution slot
	// (value: nanoseconds queued; 0 when a slot was free).
	EvServeQueueWait
	// EvServeQueueDepth samples the admission queue depth at request
	// arrival (value: requests already waiting).
	EvServeQueueDepth
	// EvServeReject is one request rejected at admission because the wait
	// queue was full (value: 1) — the HTTP 429 path.
	EvServeReject
	// EvServeTimeout is one request that hit its deadline, either waiting
	// for a slot or mid-query (value: 1).
	EvServeTimeout
	// EvClusterSub closes one successful router→shard sub-request in the
	// cluster coordinator (value: elapsed nanoseconds) — the per-shard
	// sub-request latency histogram the hedge delay derives its p99 from.
	EvClusterSub
	// EvClusterHedge is one hedged sub-request fired after the p99-derived
	// delay because the primary attempt had not answered (value: 1).
	EvClusterHedge
	// EvClusterRetry is one failover retry after a retriable sub-request
	// error — connection refused, 5xx, 429 (value: 1).
	EvClusterRetry
	// EvClusterDegraded is one scatter-gather request answered degraded
	// under the partial-result policy (value: shards failed).
	EvClusterDegraded

	// NumEvents bounds the event space; kinds ≥ NumEvents are dropped.
	NumEvents
)

var eventNames = [NumEvents]string{
	EvIndexDescend:    "IndexDescend",
	EvStabScan:        "StabScan",
	EvLeafScan:        "LeafScan",
	EvSkipDesc:        "SkipDesc",
	EvSkipAnc:         "SkipAnc",
	EvAncProbe:        "AncProbe",
	EvOutput:          "Output",
	EvPageRead:        "PageRead",
	EvPageWrite:       "PageWrite",
	EvPageEvict:       "PageEvict",
	EvJoinSpan:        "JoinSpan",
	EvServeSpan:       "ServeSpan",
	EvServeQueueWait:  "ServeQueueWait",
	EvServeQueueDepth: "ServeQueueDepth",
	EvServeReject:     "ServeReject",
	EvServeTimeout:    "ServeTimeout",
	EvClusterSub:      "ClusterSub",
	EvClusterHedge:    "ClusterHedge",
	EvClusterRetry:    "ClusterRetry",
	EvClusterDegraded: "ClusterDegraded",
}

// String returns the event's canonical name (also its JSON key).
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "Unknown"
}

// Tracer receives structured events from the instrumented layers. Event is
// called from hot paths, possibly from many goroutines at once:
// implementations must be cheap and concurrency-safe. A nil Tracer (the
// default everywhere) is never called.
type Tracer interface {
	Event(kind EventKind, value int64)
}

// SkippingEffectiveness returns the fraction of input elements a join never
// touched: 1 − scanned/total. This is the paper's headline claim quantified
// (Tables 2-3: XR-stack scans only joining elements, so effectiveness tends
// to 1 as selectivity drops). Returns 0 for an empty input, and clamps to
// [0, 1] (an algorithm that rescans, like MPMGJN, would otherwise go
// negative).
func SkippingEffectiveness(scanned, total int64) float64 {
	if total <= 0 {
		return 0
	}
	eff := 1 - float64(scanned)/float64(total)
	if eff < 0 {
		return 0
	}
	if eff > 1 {
		return 1
	}
	return eff
}
