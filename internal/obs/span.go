package obs

import (
	"encoding/hex"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing: a lightweight span tree built on the same EventKind
// vocabulary as the Collector. A Trace is one request's causal record; its
// Spans are the phases the request passed through (admission, join, the
// per-document tasks of a parallel join). A Span implements Tracer, so the
// existing metrics.Counters.Tracer plumbing threads span attribution
// through every instrumented layer without a signature change: whichever
// span is carried by the counters a layer works against receives that
// layer's events as typed attributes, and every event also rolls up into
// the trace's totals and an optional downstream Tracer (a Collector).
//
// Identifiers follow the W3C Trace Context format (traceparent header:
// 00-<16-byte trace id>-<8-byte span id>-<flags>), so traces propagate
// across the HTTP boundary — xrblast stamps outgoing requests and xrserve
// adopts or mints ids accordingly.

// TraceID identifies one request trace (16 bytes, hex-encoded on the wire).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, hex on the wire).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-character lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-character lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes a 32-character hex trace id.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// ParseSpanID decodes a 16-character hex span id.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// Traceparent renders a W3C trace-context header value (version 00).
func Traceparent(t TraceID, s SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + t.String() + "-" + s.String() + "-" + flags
}

// ParseTraceparent decodes a W3C traceparent header value. It accepts any
// version whose first four fields follow the version-00 layout, per spec.
func ParseTraceparent(h string) (t TraceID, parent SpanID, sampled bool, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || parts[0] == "ff" {
		return TraceID{}, SpanID{}, false, false
	}
	t, ok = ParseTraceID(parts[1])
	if !ok {
		return TraceID{}, SpanID{}, false, false
	}
	parent, ok = ParseSpanID(parts[2])
	if !ok {
		return TraceID{}, SpanID{}, false, false
	}
	if len(parts[3]) != 2 {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(parts[3])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	return t, parent, flags[0]&1 == 1, true
}

// IDSource generates trace and span ids. A zero seed draws a random one;
// a fixed seed makes the id sequence (and nothing else) deterministic,
// which the trace tests rely on. Safe for concurrent use.
type IDSource struct {
	mu  sync.Mutex
	rng *mrand.Rand
}

// NewIDSource returns an id generator. seed == 0 selects a random seed.
func NewIDSource(seed uint64) *IDSource {
	if seed == 0 {
		seed = mrand.Uint64() | 1
	}
	return &IDSource{rng: mrand.New(mrand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// TraceID returns a fresh non-zero trace id.
func (s *IDSource) TraceID() TraceID {
	var t TraceID
	s.mu.Lock()
	for t.IsZero() {
		putU64(t[0:8], s.rng.Uint64())
		putU64(t[8:16], s.rng.Uint64())
	}
	s.mu.Unlock()
	return t
}

// SpanID returns a fresh non-zero span id.
func (s *IDSource) SpanID() SpanID {
	var id SpanID
	s.mu.Lock()
	for id.IsZero() {
		putU64(id[:], s.rng.Uint64())
	}
	s.mu.Unlock()
	return id
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Sampler makes head-based trace-sampling decisions at the given rate in
// [0, 1]. A zero seed draws a random one; a fixed seed makes the decision
// sequence deterministic. Safe for concurrent use; the rate-0 fast path
// takes no lock.
type Sampler struct {
	rate float64
	mu   sync.Mutex
	rng  *mrand.Rand
}

// NewSampler returns a sampler; rates outside [0, 1] are clamped.
func NewSampler(rate float64, seed uint64) *Sampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	if seed == 0 {
		seed = mrand.Uint64() | 1
	}
	return &Sampler{rate: rate, rng: mrand.New(mrand.NewPCG(seed, seed^0xd1b54a32d192ed03))}
}

// Rate returns the configured sampling rate.
func (s *Sampler) Rate() float64 { return s.rate }

// Sample returns the next head-sampling decision.
func (s *Sampler) Sample() bool {
	if s.rate <= 0 {
		return false
	}
	if s.rate >= 1 {
		return true
	}
	s.mu.Lock()
	v := s.rng.Float64()
	s.mu.Unlock()
	return v < s.rate
}

// SpanTracer is a Tracer that can open child spans. *Span implements it;
// layers that want sub-structure (the parallel join driver's per-document
// tasks) type-assert the tracer they were handed and fall back to flat
// event emission when the assertion fails.
type SpanTracer interface {
	Tracer
	StartSpan(name string) *Span
}

// maxTraceSpans bounds one trace's exported span list. Spans past the
// bound still work (their events roll up into the totals and the parent
// chain stays intact) but are dropped from the record, counted in
// TraceRecord.DroppedSpans.
const maxTraceSpans = 512

// Span is one node of a trace: a named, timed phase whose typed attributes
// are the events (EventKind, value) recorded while it was the current
// tracer. All methods are nil-safe and safe for concurrent use.
type Span struct {
	trace  *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	durNS  atomic.Int64
	ended  atomic.Bool
	counts [NumEvents]atomic.Int64
	sums   [NumEvents]atomic.Int64
}

// ID returns the span id.
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Event records one event as a span attribute, rolls it into the trace
// totals, and forwards it to the trace's downstream sink.
func (s *Span) Event(kind EventKind, value int64) {
	if s == nil || kind >= NumEvents {
		return
	}
	s.counts[kind].Add(1)
	s.sums[kind].Add(value)
	t := s.trace
	t.totalCounts[kind].Add(1)
	t.totalSums[kind].Add(value)
	if t.next != nil {
		t.next.Event(kind, value)
	}
}

// Count returns how many events of the kind this span recorded.
func (s *Span) Count(kind EventKind) int64 {
	if s == nil || kind >= NumEvents {
		return 0
	}
	return s.counts[kind].Load()
}

// StartSpan opens a child span. The child must be ended by its owner.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	return s.trace.newSpan(name, s.id)
}

// End closes the span, fixing its duration. Idempotent.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.durNS.Store(int64(time.Since(s.start)))
}

// EndDur closes the span with an explicit duration — the serving layer
// passes the same measurement it emits as EvServeSpan, so the root span
// duration and the request-latency histogram agree exactly. Idempotent.
func (s *Span) EndDur(d time.Duration) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.durNS.Store(int64(d))
}

// Trace is one request's span tree plus an event rollup. Create with
// NewTrace, thread Root (or children) through metrics.Counters.Tracer,
// End the root, then Record for the exportable form.
type Trace struct {
	id     TraceID
	remote SpanID // parent span of an incoming traceparent, if any
	start  time.Time
	ids    *IDSource
	next   Tracer // optional downstream sink; receives every span event

	totalCounts [NumEvents]atomic.Int64
	totalSums   [NumEvents]atomic.Int64

	mu      sync.Mutex
	spans   []*Span
	dropped int
}

// NewTrace starts a trace and its root span. A zero id mints a fresh one
// from ids; remote is the parent span id of an incoming traceparent (zero
// when the trace originates here). next, when non-nil, receives every
// event recorded on any span (obs.Collector is the usual choice).
func NewTrace(name string, id TraceID, remote SpanID, ids *IDSource, next Tracer) *Trace {
	if ids == nil {
		ids = NewIDSource(0)
	}
	if id.IsZero() {
		id = ids.TraceID()
	}
	t := &Trace{id: id, remote: remote, start: time.Now(), ids: ids, next: next}
	t.newSpan(name, remote)
	return t
}

// ID returns the trace id.
func (t *Trace) ID() TraceID { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[0]
}

// SetSink directs a copy of every span event to next (nil detaches). Call
// before any events flow; the field is not synchronized against Event.
func (t *Trace) SetSink(next Tracer) { t.next = next }

// Total returns the trace-wide count of events of the kind across all
// spans — the per-request counter delta the span attributes must account
// for.
func (t *Trace) Total(kind EventKind) int64 {
	if kind >= NumEvents {
		return 0
	}
	return t.totalCounts[kind].Load()
}

func (t *Trace) newSpan(name string, parent SpanID) *Span {
	s := &Span{trace: t, id: t.ids.SpanID(), parent: parent, name: name, start: time.Now()}
	t.mu.Lock()
	if len(t.spans) < maxTraceSpans {
		t.spans = append(t.spans, s)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	return s
}

// AttrValue is one exported span attribute: how many events of a kind a
// span recorded and the sum of their values.
type AttrValue struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
}

// SpanRecord is the exported form of one span. StartNS is the offset from
// the trace start, so a renderer can lay spans on one timeline.
type SpanRecord struct {
	ID      string               `json:"id"`
	Parent  string               `json:"parent,omitempty"`
	Name    string               `json:"name"`
	StartNS int64                `json:"start_ns"`
	DurNS   int64                `json:"dur_ns"`
	Attrs   map[string]AttrValue `json:"attrs,omitempty"`
}

// TraceRecord is the exported form of one completed trace: the shape of
// one entry of /debug/traces and the input of the xrtrace pretty-printer.
type TraceRecord struct {
	TraceID      string               `json:"trace_id"`
	RemoteParent string               `json:"remote_parent,omitempty"`
	Name         string               `json:"name"`
	Start        time.Time            `json:"start"`
	DurNS        int64                `json:"dur_ns"`
	Pinned       bool                 `json:"pinned,omitempty"`
	DroppedSpans int                  `json:"dropped_spans,omitempty"`
	Spans        []SpanRecord         `json:"spans"`
	Totals       map[string]AttrValue `json:"totals,omitempty"`
}

// Record exports the trace. It ends the root span if still open; spans
// left open are charged up to the trace end. Call after the request is
// done — Record does not synchronize with concurrent span activity.
func (t *Trace) Record() *TraceRecord {
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()

	root := spans[0]
	root.End()
	rootDur := root.durNS.Load()

	rec := &TraceRecord{
		TraceID:      t.id.String(),
		Name:         root.name,
		Start:        t.start,
		DurNS:        rootDur,
		DroppedSpans: dropped,
		Spans:        make([]SpanRecord, 0, len(spans)),
	}
	if !t.remote.IsZero() {
		rec.RemoteParent = t.remote.String()
	}
	for _, s := range spans {
		startNS := int64(s.start.Sub(t.start))
		dur := s.durNS.Load()
		if !s.ended.Load() {
			if dur = rootDur - startNS; dur < 0 {
				dur = 0
			}
		}
		sr := SpanRecord{
			ID:      s.id.String(),
			Name:    s.name,
			StartNS: startNS,
			DurNS:   dur,
		}
		if !s.parent.IsZero() {
			sr.Parent = s.parent.String()
		}
		for k := EventKind(0); k < NumEvents; k++ {
			if n := s.counts[k].Load(); n > 0 {
				if sr.Attrs == nil {
					sr.Attrs = make(map[string]AttrValue)
				}
				sr.Attrs[k.String()] = AttrValue{Count: n, Sum: s.sums[k].Load()}
			}
		}
		rec.Spans = append(rec.Spans, sr)
	}
	for k := EventKind(0); k < NumEvents; k++ {
		if n := t.totalCounts[k].Load(); n > 0 {
			if rec.Totals == nil {
				rec.Totals = make(map[string]AttrValue)
			}
			rec.Totals[k.String()] = AttrValue{Count: n, Sum: t.totalSums[k].Load()}
		}
	}
	return rec
}

// WriteText renders the trace as an indented span tree for humans: one
// line per span with its duration and attribute digest, children indented
// under their parents in start order.
func (r *TraceRecord) WriteText(w io.Writer) error {
	flags := ""
	if r.Pinned {
		flags = "  [slow]"
	}
	if _, err := fmt.Fprintf(w, "trace %s  %s  %.3fms  spans=%d%s\n",
		r.TraceID, r.Name, float64(r.DurNS)/1e6, len(r.Spans), flags); err != nil {
		return err
	}
	if r.DroppedSpans > 0 {
		if _, err := fmt.Fprintf(w, "  (%d spans dropped past the per-trace cap)\n", r.DroppedSpans); err != nil {
			return err
		}
	}
	children := make(map[string][]int)
	ids := make(map[string]bool, len(r.Spans))
	for _, s := range r.Spans {
		ids[s.ID] = true
	}
	var roots []int
	for i, s := range r.Spans {
		if s.Parent != "" && ids[s.Parent] {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var walk func(idx int, depth int) error
	walk = func(idx, depth int) error {
		s := r.Spans[idx]
		if _, err := fmt.Fprintf(w, "%s- %-32s %9.3fms%s\n",
			strings.Repeat("  ", depth+1), s.Name, float64(s.DurNS)/1e6, attrDigest(s.Attrs)); err != nil {
			return err
		}
		kids := children[s.ID]
		sort.Slice(kids, func(a, b int) bool { return r.Spans[kids[a]].StartNS < r.Spans[kids[b]].StartNS })
		for _, k := range kids {
			if err := walk(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	sort.Slice(roots, func(a, b int) bool { return r.Spans[roots[a]].StartNS < r.Spans[roots[b]].StartNS })
	for _, i := range roots {
		if err := walk(i, 0); err != nil {
			return err
		}
	}
	return nil
}

// attrDigest renders a span's attributes compactly in stable order:
// "Kind=count" when every event carried value 1, "Kind:n=c,sum=s"
// otherwise. Duration-valued serve/join kinds render their sums as
// milliseconds.
func attrDigest(attrs map[string]AttrValue) string {
	if len(attrs) == 0 {
		return ""
	}
	names := make([]string, 0, len(attrs))
	for name := range attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		a := attrs[name]
		switch {
		case name == EvJoinSpan.String() || name == EvServeSpan.String() || name == EvServeQueueWait.String():
			fmt.Fprintf(&b, "  %s=%.3fms", name, float64(a.Sum)/1e6)
		case a.Sum == a.Count:
			fmt.Fprintf(&b, "  %s=%d", name, a.Count)
		default:
			fmt.Fprintf(&b, "  %s:n=%d,sum=%d", name, a.Count, a.Sum)
		}
	}
	return b.String()
}
