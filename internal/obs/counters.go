package obs

import "sync/atomic"

// Counters is the concurrency-safe twin of metrics.Counters: the same cost
// accounts, each an atomic. It is the right representation wherever one
// counter set is mutated from several goroutines — the buffer pool's
// always-on statistics are the canonical user. Single-goroutine code keeps
// using the plain metrics.Counters.
//
// The zero value is ready to use.
type Counters struct {
	ElementsScanned atomic.Int64
	OutputPairs     atomic.Int64
	IndexNodeReads  atomic.Int64
	LeafReads       atomic.Int64
	StabPageReads   atomic.Int64
	BufferHits      atomic.Int64
	BufferMisses    atomic.Int64
	PhysicalReads   atomic.Int64
	PhysicalWrites  atomic.Int64
	PageEvictions   atomic.Int64

	// ReadCalls counts read syscalls issued by the storage manager. With
	// coalesced vectored reads one call can fetch several physically
	// adjacent pages, so PhysicalReads / ReadCalls ≥ 1 is the coalescing
	// ratio.
	ReadCalls atomic.Int64

	// ScanEvictions counts frames evicted from the probationary queue
	// without ever being re-referenced — the pages a scan streamed through
	// the pool once. ProtectedHits counts hits on re-referenced (protected)
	// frames. Both are zero under plain LRU.
	ScanEvictions atomic.Int64
	ProtectedHits atomic.Int64

	// PrefetchIssued counts readahead hints accepted by the prefetcher;
	// PrefetchReads counts pages it actually pulled in (hints for already
	// resident or raced-in pages are dropped).
	PrefetchIssued atomic.Int64
	PrefetchReads  atomic.Int64
}

// CountersSnapshot is a plain-data copy of a Counters at one instant,
// suitable for JSON export and for conversion to metrics.Counters
// (metrics.FromSnapshot).
type CountersSnapshot struct {
	ElementsScanned int64 `json:"elements_scanned"`
	OutputPairs     int64 `json:"output_pairs"`
	IndexNodeReads  int64 `json:"index_node_reads"`
	LeafReads       int64 `json:"leaf_reads"`
	StabPageReads   int64 `json:"stab_page_reads"`
	BufferHits      int64 `json:"buffer_hits"`
	BufferMisses    int64 `json:"buffer_misses"`
	PhysicalReads   int64 `json:"physical_reads"`
	PhysicalWrites  int64 `json:"physical_writes"`
	PageEvictions   int64 `json:"page_evictions"`
	ReadCalls       int64 `json:"read_calls,omitempty"`
	ScanEvictions   int64 `json:"scan_evictions,omitempty"`
	ProtectedHits   int64 `json:"protected_hits,omitempty"`
	PrefetchIssued  int64 `json:"prefetch_issued,omitempty"`
	PrefetchReads   int64 `json:"prefetch_reads,omitempty"`
}

// Snapshot returns a point-in-time copy of the counters. Under concurrent
// mutation the fields are individually (not jointly) consistent, which is
// all the audit invariants need.
func (c *Counters) Snapshot() CountersSnapshot {
	return CountersSnapshot{
		ElementsScanned: c.ElementsScanned.Load(),
		OutputPairs:     c.OutputPairs.Load(),
		IndexNodeReads:  c.IndexNodeReads.Load(),
		LeafReads:       c.LeafReads.Load(),
		StabPageReads:   c.StabPageReads.Load(),
		BufferHits:      c.BufferHits.Load(),
		BufferMisses:    c.BufferMisses.Load(),
		PhysicalReads:   c.PhysicalReads.Load(),
		PhysicalWrites:  c.PhysicalWrites.Load(),
		PageEvictions:   c.PageEvictions.Load(),
		ReadCalls:       c.ReadCalls.Load(),
		ScanEvictions:   c.ScanEvictions.Load(),
		ProtectedHits:   c.ProtectedHits.Load(),
		PrefetchIssued:  c.PrefetchIssued.Load(),
		PrefetchReads:   c.PrefetchReads.Load(),
	}
}

// Reset zeroes all counters (not atomically as a set).
func (c *Counters) Reset() {
	c.ElementsScanned.Store(0)
	c.OutputPairs.Store(0)
	c.IndexNodeReads.Store(0)
	c.LeafReads.Store(0)
	c.StabPageReads.Store(0)
	c.BufferHits.Store(0)
	c.BufferMisses.Store(0)
	c.PhysicalReads.Store(0)
	c.PhysicalWrites.Store(0)
	c.PageEvictions.Store(0)
	c.ReadCalls.Store(0)
	c.ScanEvictions.Store(0)
	c.ProtectedHits.Store(0)
	c.PrefetchIssued.Store(0)
	c.PrefetchReads.Store(0)
}

// Sub returns the per-field difference s − old, for before/after deltas.
func (s CountersSnapshot) Sub(old CountersSnapshot) CountersSnapshot {
	return CountersSnapshot{
		ElementsScanned: s.ElementsScanned - old.ElementsScanned,
		OutputPairs:     s.OutputPairs - old.OutputPairs,
		IndexNodeReads:  s.IndexNodeReads - old.IndexNodeReads,
		LeafReads:       s.LeafReads - old.LeafReads,
		StabPageReads:   s.StabPageReads - old.StabPageReads,
		BufferHits:      s.BufferHits - old.BufferHits,
		BufferMisses:    s.BufferMisses - old.BufferMisses,
		PhysicalReads:   s.PhysicalReads - old.PhysicalReads,
		PhysicalWrites:  s.PhysicalWrites - old.PhysicalWrites,
		PageEvictions:   s.PageEvictions - old.PageEvictions,
		ReadCalls:       s.ReadCalls - old.ReadCalls,
		ScanEvictions:   s.ScanEvictions - old.ScanEvictions,
		ProtectedHits:   s.ProtectedHits - old.ProtectedHits,
		PrefetchIssued:  s.PrefetchIssued - old.PrefetchIssued,
		PrefetchReads:   s.PrefetchReads - old.PrefetchReads,
	}
}
