package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	ids := NewIDSource(7)
	tid, sid := ids.TraceID(), ids.SpanID()
	for _, sampled := range []bool{true, false} {
		h := Traceparent(tid, sid, sampled)
		gt, gs, gf, ok := ParseTraceparent(h)
		if !ok || gt != tid || gs != sid || gf != sampled {
			t.Fatalf("round trip %q: got (%v %v %v %v)", h, gt, gs, gf, ok)
		}
	}
	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff is forbidden
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
	} {
		if _, _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestIDSourceDeterministicWithSeed(t *testing.T) {
	a, b := NewIDSource(99), NewIDSource(99)
	for i := 0; i < 10; i++ {
		if a.TraceID() != b.TraceID() || a.SpanID() != b.SpanID() {
			t.Fatalf("seeded id sequences diverged at step %d", i)
		}
	}
}

func TestSamplerDeterministicWithSeed(t *testing.T) {
	a, b := NewSampler(0.3, 12345), NewSampler(0.3, 12345)
	hits := 0
	for i := 0; i < 1000; i++ {
		da, db := a.Sample(), b.Sample()
		if da != db {
			t.Fatalf("seeded decision sequences diverged at step %d", i)
		}
		if da {
			hits++
		}
	}
	if hits < 200 || hits > 400 {
		t.Errorf("rate 0.3: %d/1000 sampled", hits)
	}
	if NewSampler(0, 1).Sample() {
		t.Error("rate 0 sampled")
	}
	if !NewSampler(1, 1).Sample() {
		t.Error("rate 1 skipped")
	}
	if got := NewSampler(7, 1).Rate(); got != 1 {
		t.Errorf("rate not clamped: %g", got)
	}
	if got := NewSampler(-2, 1).Rate(); got != 0 {
		t.Errorf("rate not clamped: %g", got)
	}
}

func TestTraceSpanTreeRecord(t *testing.T) {
	ids := NewIDSource(5)
	col := NewCollector()
	tr := NewTrace("serve /join", TraceID{}, SpanID{}, ids, col)
	root := tr.Root()
	root.Event(EvServeQueueWait, 1000)

	join := root.StartSpan("join")
	join.Event(EvPageRead, 1)
	join.Event(EvPageRead, 1)
	join.Event(EvLeafScan, 7)
	task := join.StartSpan("task doc=1")
	task.Event(EvPageRead, 1)
	task.End()
	join.End()
	root.EndDur(42 * time.Millisecond)

	if got := tr.Total(EvPageRead); got != 3 {
		t.Fatalf("Total(EvPageRead) = %d, want 3", got)
	}
	if got := col.Count(EvPageRead); got != 3 {
		t.Fatalf("sink Count(EvPageRead) = %d, want 3 (events must also reach next)", got)
	}

	rec := tr.Record()
	if rec.DurNS != int64(42*time.Millisecond) {
		t.Errorf("root DurNS = %d, want the EndDur value", rec.DurNS)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("%d spans recorded, want 3", len(rec.Spans))
	}
	if rec.Spans[0].Parent != "" || rec.Spans[1].Parent != rec.Spans[0].ID || rec.Spans[2].Parent != rec.Spans[1].ID {
		t.Errorf("parent links wrong: %+v", rec.Spans)
	}
	// Span attributes must account for the trace totals.
	var spanReads int64
	for _, s := range rec.Spans {
		spanReads += s.Attrs[EvPageRead.String()].Count
	}
	if spanReads != rec.Totals[EvPageRead.String()].Count || spanReads != 3 {
		t.Errorf("span PageRead sum %d, totals %v", spanReads, rec.Totals[EvPageRead.String()])
	}

	var b strings.Builder
	if err := rec.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"serve /join", "join", "task doc=1", "PageRead=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceAdoptsRemoteContext(t *testing.T) {
	ids := NewIDSource(3)
	tid, parent := ids.TraceID(), ids.SpanID()
	tr := NewTrace("serve", tid, parent, ids, nil)
	if tr.ID() != tid {
		t.Fatalf("trace did not adopt the incoming id")
	}
	rec := tr.Record()
	if rec.RemoteParent != parent.String() {
		t.Errorf("RemoteParent = %q, want %q", rec.RemoteParent, parent)
	}
	if rec.Spans[0].Parent != parent.String() {
		t.Errorf("root parent = %q, want the remote span", rec.Spans[0].Parent)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("root", TraceID{}, SpanID{}, NewIDSource(1), nil)
	root := tr.Root()
	for i := 0; i < maxTraceSpans+10; i++ {
		sp := root.StartSpan("s")
		sp.Event(EvOutput, 1)
		sp.End()
	}
	rec := tr.Record()
	if len(rec.Spans) != maxTraceSpans {
		t.Errorf("%d spans recorded, want the cap %d", len(rec.Spans), maxTraceSpans)
	}
	// The cap includes the root span, so cap+10 children overflow by 11.
	if rec.DroppedSpans != 11 {
		t.Errorf("DroppedSpans = %d, want 11", rec.DroppedSpans)
	}
	// Dropped spans still roll up into totals.
	if got := rec.Totals[EvOutput.String()].Count; got != int64(maxTraceSpans+10) {
		t.Errorf("Totals Output = %d, want %d", got, maxTraceSpans+10)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	sp.Event(EvPageRead, 1) // must not panic
	sp.End()
	sp.EndDur(time.Second)
	if sp.StartSpan("child") != nil {
		t.Error("nil span produced a child")
	}
	if sp.Count(EvPageRead) != 0 || !sp.ID().IsZero() {
		t.Error("nil span reported state")
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(4, 2)
	if r.Stats().Capacity != 4 || r.Stats().PinnedCapacity != 2 {
		t.Fatalf("capacities = %+v", r.Stats())
	}
	recs := make([]*TraceRecord, 10)
	for i := range recs {
		recs[i] = &TraceRecord{TraceID: string(rune('a' + i)), DurNS: int64(i)}
		r.Record(recs[i])
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("%d retained, want 4", len(snap))
	}
	// Newest first: the last four records in reverse order.
	for i, want := range []*TraceRecord{recs[9], recs[8], recs[7], recs[6]} {
		if snap[i] != want {
			t.Fatalf("snapshot[%d] = %v, want %v", i, snap[i].TraceID, want.TraceID)
		}
	}
	if got := r.Stats().Recorded; got != 10 {
		t.Errorf("Recorded = %d, want 10", got)
	}
}

func TestFlightRecorderSlowPinning(t *testing.T) {
	r := NewFlightRecorder(4, 2)
	r.SetSlowThreshold(100 * time.Millisecond)
	slow1 := &TraceRecord{TraceID: "slow1", DurNS: int64(150 * time.Millisecond)}
	slow2 := &TraceRecord{TraceID: "slow2", DurNS: int64(200 * time.Millisecond)}
	r.Record(slow1)
	r.Record(slow2)
	// A burst of fast traces wraps the main ring completely.
	for i := 0; i < 8; i++ {
		r.Record(&TraceRecord{TraceID: "fast", DurNS: 1})
	}
	if !slow1.Pinned || !slow2.Pinned {
		t.Fatal("slow traces not marked pinned")
	}
	snap := r.Snapshot()
	found := map[string]bool{}
	for _, rec := range snap {
		found[rec.TraceID] = true
	}
	if !found["slow1"] || !found["slow2"] {
		t.Fatalf("slow traces evicted by fast burst: %v", found)
	}
	// Pinned ring holds 2: a third slow trace evicts the oldest pinned one.
	slow3 := &TraceRecord{TraceID: "slow3", DurNS: int64(300 * time.Millisecond)}
	r.Record(slow3)
	found = map[string]bool{}
	for _, rec := range r.Snapshot() {
		found[rec.TraceID] = true
	}
	if found["slow1"] {
		t.Error("oldest pinned trace not recycled by newer slow trace")
	}
	if !found["slow2"] || !found["slow3"] {
		t.Error("newer slow traces missing after pinned-ring wrap")
	}
	if got := r.Stats().Slow; got != 3 {
		t.Errorf("Slow = %d, want 3", got)
	}
}

// TestFlightRecorderConcurrent pounds Record against Snapshot; run under
// -race this is the recorder's main correctness check.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(8, 4)
	r.SetSlowThreshold(time.Microsecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(&TraceRecord{TraceID: "t", DurNS: int64(i%2) * int64(time.Millisecond)})
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, rec := range r.Snapshot() {
					if rec == nil {
						t.Error("nil record in snapshot")
						return
					}
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if r.Stats().Recorded == 0 {
		t.Fatal("no records made it in")
	}
}

func TestPromWriterOutputLints(t *testing.T) {
	col := NewCollector()
	for i := int64(1); i <= 100; i++ {
		col.Event(EvLeafScan, i)
		col.Event(EvPageRead, 1)
	}
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("xrtree_serve_requests_total", "Requests.", 42)
	p.Gauge("xrtree_serve_in_flight", "In flight.", 3)
	p.Counter("xrtree_pool_buffer_hits_total", "Hits.", 10, PromLabel{Name: "backend", Value: "dept"})
	p.Counter("xrtree_pool_buffer_hits_total", "Hits.", 20, PromLabel{Name: "backend", Value: `we"ird\`})
	p.CollectorEvents("xrtree", col)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if problems := PromLint(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("PromWriter output fails lint:\n%s\n---\n%s", strings.Join(problems, "\n"), b.String())
	}
}

func TestPromLintCatchesBrokenExpositions(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "orphan_metric 1\n",
		"bad name":         "# TYPE 9bad counter\n9bad 1\n",
		"duplicate sample": "# TYPE a counter\na 1\na 2\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\n" + "h_sum 9\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + "h_sum 9\nh_count 5\n",
		"+Inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\n" + "h_sum 9\nh_count 5\n",
	}
	for name, doc := range cases {
		if problems := PromLint(strings.NewReader(doc)); len(problems) == 0 {
			t.Errorf("%s: lint found nothing in:\n%s", name, doc)
		}
	}
}
