package obs

import "sync/atomic"

// Collector is the standard Tracer: it aggregates the event stream into a
// per-kind occurrence count and a per-kind value histogram, lock-free. One
// Collector typically audits one operation (a join, a query, a benchmark
// point); Reset allows reuse between runs.
type Collector struct {
	counts [NumEvents]atomic.Int64
	hists  [NumEvents]Histogram
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Event records one event. Unknown kinds are dropped.
func (c *Collector) Event(kind EventKind, value int64) {
	if kind >= NumEvents {
		return
	}
	c.counts[kind].Add(1)
	c.hists[kind].Observe(value)
}

// Count returns how many events of the kind were recorded.
func (c *Collector) Count(kind EventKind) int64 {
	if kind >= NumEvents {
		return 0
	}
	return c.counts[kind].Load()
}

// Value returns the sum of the values of all events of the kind (total
// pairs output, total nanoseconds, total entries scanned, ...).
func (c *Collector) Value(kind EventKind) int64 {
	if kind >= NumEvents {
		return 0
	}
	return c.hists[kind].Sum()
}

// Histogram returns the live histogram of the kind's values (nil for an
// unknown kind). The caller must not reset it.
func (c *Collector) Histogram(kind EventKind) *Histogram {
	if kind >= NumEvents {
		return nil
	}
	return &c.hists[kind]
}

// Reset zeroes every count and histogram.
func (c *Collector) Reset() {
	for k := range c.counts {
		c.counts[k].Store(0)
		c.hists[k].Reset()
	}
}

// JoinPhases is the per-phase breakdown of one structural join, derived
// from the event stream — the accounting the paper's Tables 2-3 imply but
// never show directly. The three phases of the XR-stack algorithm are the
// ancestor probe (FindAncestors + the seek past the current descendant),
// the descendant skip (range queries past non-joining descendants), and
// output (reporting stacked pairs).
type JoinPhases struct {
	// AncProbes counts FindAncestors calls; AncestorsFetched is the total
	// number of ancestors they returned (the R of Theorem 4, summed).
	AncProbes        int64 `json:"anc_probes"`
	AncestorsFetched int64 `json:"ancestors_fetched"`
	// AncSkips counts ancestor-side index skips; AncSkipDistance is the
	// total start-position distance they jumped.
	AncSkips        int64 `json:"anc_skips"`
	AncSkipDistance int64 `json:"anc_skip_distance"`
	// DescSkips counts descendant-side range-query skips and
	// DescSkipDistance their total start-position distance.
	DescSkips        int64 `json:"desc_skips"`
	DescSkipDistance int64 `json:"desc_skip_distance"`
	// OutputBatches counts per-descendant emit batches; OutputPairs the
	// pairs reported.
	OutputBatches int64 `json:"output_batches"`
	OutputPairs   int64 `json:"output_pairs"`
	// IndexDescends counts root→leaf descents (probes + skips + the two
	// opening scans); StabScans the primary-stab-list walks behind the
	// probes.
	IndexDescends int64 `json:"index_descends"`
	StabScans     int64 `json:"stab_scans"`
}

// JoinPhases derives the phase breakdown from the collected events.
func (c *Collector) JoinPhases() JoinPhases {
	return JoinPhases{
		AncProbes:        c.Count(EvAncProbe),
		AncestorsFetched: c.Value(EvAncProbe),
		AncSkips:         c.Count(EvSkipAnc),
		AncSkipDistance:  c.Value(EvSkipAnc),
		DescSkips:        c.Count(EvSkipDesc),
		DescSkipDistance: c.Value(EvSkipDesc),
		OutputBatches:    c.Count(EvOutput),
		OutputPairs:      c.Value(EvOutput),
		IndexDescends:    c.Count(EvIndexDescend),
		StabScans:        c.Count(EvStabScan),
	}
}
