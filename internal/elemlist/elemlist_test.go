package elemlist

import (
	"errors"
	"math/rand"
	"testing"

	"xrtree/internal/bufferpool"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

func newPool(t *testing.T, pageSize, frames int) *bufferpool.Pool {
	t.Helper()
	f := pagefile.NewMem(pagefile.Options{PageSize: pageSize})
	t.Cleanup(func() { f.Close() })
	p, err := bufferpool.New(f, frames)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func nestedElements(n int) []xmldoc.Element {
	// Simple nested chain plus siblings: valid strictly nested regions.
	es := make([]xmldoc.Element, n)
	for i := 0; i < n; i++ {
		es[i] = xmldoc.Element{
			DocID: 1,
			Start: uint32(2*i + 1),
			End:   uint32(2*n + 2 - 2*i), // wrong for siblings; just use disjoint instead
		}
	}
	// Use disjoint regions: (2i+1, 2i+2).
	for i := 0; i < n; i++ {
		es[i] = xmldoc.Element{DocID: 1, Start: uint32(2*i + 1), End: uint32(2*i + 2), Level: 1, Ref: uint32(i)}
	}
	return es
}

func TestBuildAndScan(t *testing.T) {
	pool := newPool(t, 256, 8)
	es := nestedElements(100)
	l, err := Build(pool, es)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if l.Len() != 100 {
		t.Errorf("Len = %d, want 100", l.Len())
	}
	if l.Pages() < 2 {
		t.Errorf("Pages = %d, want multi-page at 256B pages", l.Pages())
	}
	var c metrics.Counters
	it := l.Scan(&c)
	defer it.Close()
	i := 0
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if e != es[i] {
			t.Fatalf("element %d = %+v, want %+v", i, e, es[i])
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	if i != 100 {
		t.Errorf("scanned %d elements, want 100", i)
	}
	if c.ElementsScanned != 100 {
		t.Errorf("ElementsScanned = %d, want 100", c.ElementsScanned)
	}
	if c.LeafReads != int64(l.Pages()) {
		t.Errorf("LeafReads = %d, want %d", c.LeafReads, l.Pages())
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	pool := newPool(t, 256, 8)
	if _, err := Build(pool, nil); !errors.Is(err, ErrEmptyList) {
		t.Errorf("Build(nil) err = %v, want ErrEmptyList", err)
	}
	unsorted := []xmldoc.Element{{DocID: 1, Start: 5, End: 6}, {DocID: 1, Start: 1, End: 2}}
	if _, err := Build(pool, unsorted); err == nil {
		t.Error("Build accepted unsorted input")
	}
	mixed := []xmldoc.Element{{DocID: 1, Start: 1, End: 2}, {DocID: 2, Start: 5, End: 6}}
	if _, err := Build(pool, mixed); err == nil {
		t.Error("Build accepted mixed DocIDs")
	}
}

func TestScanThroughTinyPool(t *testing.T) {
	// Pool smaller than the list: iteration must still work (one pin at a time).
	pool := newPool(t, 256, 2)
	es := nestedElements(500)
	l, err := Build(pool, es)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	it := l.Scan(nil)
	defer it.Close()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != 500 || it.Err() != nil {
		t.Errorf("scanned %d (err %v), want 500", n, it.Err())
	}
	if pool.PinnedCount() != 0 {
		t.Errorf("PinnedCount = %d after full scan, want 0", pool.PinnedCount())
	}
}

func TestCloseMidScanReleasesPin(t *testing.T) {
	pool := newPool(t, 256, 4)
	l, err := Build(pool, nestedElements(50))
	if err != nil {
		t.Fatal(err)
	}
	it := l.Scan(nil)
	if _, ok := it.Next(); !ok {
		t.Fatal("Next failed")
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if pool.PinnedCount() != 0 {
		t.Errorf("PinnedCount = %d, want 0", pool.PinnedCount())
	}
}

func TestSingleElementList(t *testing.T) {
	pool := newPool(t, 256, 4)
	es := []xmldoc.Element{{DocID: 3, Start: 10, End: 20, Level: 2, Ref: 7}}
	l, err := Build(pool, es)
	if err != nil {
		t.Fatal(err)
	}
	it := l.Scan(nil)
	defer it.Close()
	e, ok := it.Next()
	if !ok || e != es[0] {
		t.Errorf("got %+v,%v want %+v", e, ok, es[0])
	}
	if _, ok := it.Next(); ok {
		t.Error("Next past end returned true")
	}
	if l.DocID() != 3 {
		t.Errorf("DocID = %d, want 3", l.DocID())
	}
}

func TestLargeRandomizedList(t *testing.T) {
	pool := newPool(t, 1024, 16)
	rng := rand.New(rand.NewSource(7))
	n := 5000
	es := make([]xmldoc.Element, n)
	pos := uint32(0)
	for i := range es {
		pos += uint32(rng.Intn(5) + 1)
		start := pos
		pos += uint32(rng.Intn(5) + 1)
		es[i] = xmldoc.Element{DocID: 1, Start: start, End: pos, Level: uint16(rng.Intn(30)), Ref: uint32(i)}
	}
	l, err := Build(pool, es)
	if err != nil {
		t.Fatal(err)
	}
	it := l.Scan(nil)
	defer it.Close()
	for i := 0; ; i++ {
		e, ok := it.Next()
		if !ok {
			if i != n {
				t.Fatalf("ended at %d, want %d", i, n)
			}
			break
		}
		if e != es[i] {
			t.Fatalf("element %d mismatch", i)
		}
	}
}
