// Package elemlist stores a start-sorted element set as a chain of packed
// pages — the representation the no-index structural-join algorithms scan.
// It is the on-disk analogue of the paper's "two input lists, AList … and
// DList …, sorted on their start values".
//
// A List is immutable after Build. Iteration goes through the buffer pool
// so sequential scans cost page misses exactly the way the paper accounts
// them, and every element examined increments the ElementsScanned counter.
package elemlist

import (
	"errors"
	"fmt"

	"xrtree/internal/bufferpool"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// Page layout:
//
//	offset 0:  count   u16 — elements on this page
//	offset 2:  pad     u16
//	offset 4:  next    u32 — PageID of the next page (InvalidPage at end)
//	offset 8:  entries count × xmldoc.EncodedSize
const (
	headerSize = 8
	offCount   = 0
	offNext    = 4
)

// ErrEmptyList is returned by Build for an empty element slice.
var ErrEmptyList = errors.New("elemlist: cannot build an empty list")

// List is an immutable on-disk element list.
type List struct {
	pool    *bufferpool.Pool
	head    pagefile.PageID
	numElem int
	pages   int
	docID   uint32
	perPage int
	// pageIDs maps page ordinal → PageID for direct positional access
	// (ScanAt); populated by Build and lazily by Open.
	pageIDs []pagefile.PageID
}

// Build writes es (which must be sorted by Start) into a new list of pages
// allocated from pool's file. All elements must share one DocID.
func Build(pool *bufferpool.Pool, es []xmldoc.Element) (*List, error) {
	if len(es) == 0 {
		return nil, ErrEmptyList
	}
	perPage := (pool.File().PageSize() - headerSize) / xmldoc.EncodedSize
	if perPage < 1 {
		return nil, fmt.Errorf("elemlist: page size %d too small", pool.File().PageSize())
	}
	docID := es[0].DocID
	for i := 1; i < len(es); i++ {
		if es[i-1].Start >= es[i].Start {
			return nil, fmt.Errorf("elemlist: elements not sorted by start at %d", i)
		}
		if es[i].DocID != docID {
			return nil, fmt.Errorf("elemlist: mixed DocIDs %d and %d", docID, es[i].DocID)
		}
	}

	// Unlogged bulk construction; durability comes from the store's save.
	pool.BeginUnlogged()
	defer pool.EndUnlogged()

	l := &List{pool: pool, numElem: len(es), docID: docID, perPage: perPage}
	var prevID pagefile.PageID
	var prevData []byte
	for off := 0; off < len(es); off += perPage {
		id, data, err := pool.FetchNew()
		if err != nil {
			return nil, err
		}
		n := len(es) - off
		if n > perPage {
			n = perPage
		}
		putU16(data[offCount:], uint16(n))
		putU32(data[offNext:], uint32(pagefile.InvalidPage))
		for i := 0; i < n; i++ {
			es[off+i].Encode(data[headerSize+i*xmldoc.EncodedSize:], 0)
		}
		if prevData != nil {
			putU32(prevData[offNext:], uint32(id))
			if err := pool.Unpin(prevID, true); err != nil {
				pool.Unpin(id, false) // abandon the page fetched this iteration
				return nil, err
			}
		} else {
			l.head = id
		}
		prevID, prevData = id, data
		l.pageIDs = append(l.pageIDs, id)
		l.pages++
	}
	if err := pool.Unpin(prevID, true); err != nil {
		return nil, err
	}
	return l, nil
}

// Open reattaches to a list previously created by Build, given its head
// page, element count, page count and document id (the values a catalog
// persists).
func Open(pool *bufferpool.Pool, head pagefile.PageID, numElem, pages int, docID uint32) (*List, error) {
	perPage := (pool.File().PageSize() - headerSize) / xmldoc.EncodedSize
	if perPage < 1 {
		return nil, fmt.Errorf("elemlist: page size %d too small", pool.File().PageSize())
	}
	if head == pagefile.InvalidPage || numElem <= 0 || pages <= 0 {
		return nil, fmt.Errorf("elemlist: invalid list handle (head=%d n=%d pages=%d)", head, numElem, pages)
	}
	return &List{pool: pool, head: head, numElem: numElem, pages: pages, docID: docID, perPage: perPage}, nil
}

// Len returns the number of elements in the list.
func (l *List) Len() int { return l.numElem }

// Pages returns the number of pages the list occupies.
func (l *List) Pages() int { return l.pages }

// DocID returns the document id shared by all elements.
func (l *List) DocID() uint32 { return l.docID }

// Head returns the first page of the list (for diagnostics).
func (l *List) Head() pagefile.PageID { return l.head }

// readaheadWindow is how far ahead, in pages, an iterator hints to the
// pool's prefetcher when the positional page map is known. Hints go out in
// half-window batches (see hintReadahead), so the prefetcher always has a
// multi-page run to coalesce and a few pages of demand headroom to win the
// race against the scan.
const readaheadWindow = 8

// Iterator walks the list in start order. It pins at most one page at a
// time; Close releases the current pin.
type Iterator struct {
	list *List
	c    *metrics.Counters

	pageID pagefile.PageID
	data   []byte
	count  int
	idx    int
	err    error

	// ord is the ordinal of pageID within the list when known (enables
	// windowed readahead hints); -1 when position tracking was lost.
	ord int
	// hinted is the readahead high-water mark: the first list ordinal not
	// yet published to the prefetcher (see hintReadahead).
	hinted int

	// pendingIdx/hasPending carry a Restore'd position across the page
	// re-fetch that the next Next performs.
	pendingIdx int
	hasPending bool
}

// Scan returns an iterator positioned before the first element. The
// counters c (may be nil) receive ElementsScanned and LeafReads increments.
func (l *List) Scan(c *metrics.Counters) *Iterator {
	return &Iterator{list: l, c: c, pageID: l.head, idx: -1}
}

// ScanAt returns an iterator positioned before the element with the given
// ordinal (0-based), reaching its page directly — the positional access a
// stored record pointer gives, used by the B+sp sibling-pointer join
// variant. Ordinals at or past the end yield an exhausted iterator.
func (l *List) ScanAt(ordinal int, c *metrics.Counters) (*Iterator, error) {
	if ordinal >= l.numElem || ordinal < 0 {
		return &Iterator{list: l, c: c, pageID: pagefile.InvalidPage, idx: -1}, nil
	}
	if err := l.ensurePageIDs(); err != nil {
		return nil, err
	}
	page := ordinal / l.perPage
	it := &Iterator{list: l, c: c, pageID: l.pageIDs[page], idx: -1, ord: page}
	it.pendingIdx = ordinal%l.perPage - 1
	it.hasPending = true
	return it, nil
}

// ensurePageIDs walks the chain once to build the positional page map
// (needed after Open, which only has the head page).
func (l *List) ensurePageIDs() error {
	if len(l.pageIDs) == l.pages {
		return nil
	}
	l.pageIDs = l.pageIDs[:0]
	p := l.head
	for p != pagefile.InvalidPage {
		l.pageIDs = append(l.pageIDs, p)
		data, err := l.pool.Fetch(p)
		if err != nil {
			return err
		}
		next := pagefile.PageID(getU32(data[offNext:]))
		if err := l.pool.Unpin(p, false); err != nil {
			return err
		}
		p = next
	}
	if len(l.pageIDs) != l.pages {
		return fmt.Errorf("elemlist: chain has %d pages, header says %d", len(l.pageIDs), l.pages)
	}
	return nil
}

// loadPage pins the iterator's current page, applies any pending Restore
// position, counts the leaf read, and publishes readahead hints. Returns
// false when the chain is exhausted or on error/cancellation (it.err set).
func (it *Iterator) loadPage() bool {
	if it.pageID == pagefile.InvalidPage {
		return false
	}
	// Page boundary: the cancellation point of a list scan.
	if err := it.c.Interrupted(); err != nil {
		it.err = err
		return false
	}
	data, err := it.list.pool.FetchTraced(it.pageID, it.c.TraceSink())
	if err != nil {
		it.err = err
		return false
	}
	it.data = data
	it.count = int(getU16(data[offCount:]))
	it.idx = -1
	if it.hasPending {
		it.idx = it.pendingIdx
		it.hasPending = false
	}
	if it.c != nil {
		it.c.LeafReads++
	}
	it.hintReadahead()
	return true
}

// hintReadahead publishes the iterator's upcoming pages to the pool's
// prefetcher: positional pages when the page map and ordinal are known,
// otherwise just the chained next page. The positional path tops up in
// half-window batches against a hinted high-water mark rather than
// re-hinting an overlapping window at every page boundary — each hint then
// carries a fresh multi-page run the prefetcher can coalesce into one
// vectored read, instead of one new page buried under already-sent ids.
func (it *Iterator) hintReadahead() {
	pool := it.list.pool
	if !pool.PrefetchEnabled() {
		return
	}
	if it.ord >= 0 && len(it.list.pageIDs) == it.list.pages {
		lo := it.ord + 1
		hi := lo + readaheadWindow
		if hi > it.list.pages {
			hi = it.list.pages
		}
		if lo < it.hinted {
			lo = it.hinted
		}
		if lo < hi && hi-lo >= readaheadWindow/2 {
			pool.Prefetch(it.c, it.list.pageIDs[lo:hi]...)
			it.hinted = hi
		}
		return
	}
	pool.Prefetch(it.c, pagefile.PageID(getU32(it.data[offNext:])))
}

// advancePage releases the current page and steps to the chained next one.
func (it *Iterator) advancePage() bool {
	next := pagefile.PageID(getU32(it.data[offNext:]))
	if err := it.list.pool.Unpin(it.pageID, false); err != nil {
		it.err = err
		return false
	}
	it.data = nil
	it.pageID = next
	if it.ord >= 0 {
		it.ord++
	}
	return true
}

// Next advances to the next element, returning false at the end or on
// error (check Err). Each returned element counts as one scan.
func (it *Iterator) Next() (xmldoc.Element, bool) {
	if it.err != nil {
		return xmldoc.Element{}, false
	}
	for {
		if it.data == nil {
			if !it.loadPage() {
				return xmldoc.Element{}, false
			}
		}
		it.idx++
		if it.idx < it.count {
			e, _ := xmldoc.DecodeElement(it.data[headerSize+it.idx*xmldoc.EncodedSize:])
			e.DocID = it.list.docID
			if it.c != nil {
				it.c.ElementsScanned++
			}
			return e, true
		}
		if !it.advancePage() {
			return xmldoc.Element{}, false
		}
	}
}

// Peek returns the element Next would return without consuming it and
// without counting a scan.
func (it *Iterator) Peek() (xmldoc.Element, bool) {
	if it.err != nil {
		return xmldoc.Element{}, false
	}
	for {
		if it.data == nil {
			if !it.loadPage() {
				return xmldoc.Element{}, false
			}
		}
		if it.idx+1 < it.count {
			e, _ := xmldoc.DecodeElement(it.data[headerSize+(it.idx+1)*xmldoc.EncodedSize:])
			e.DocID = it.list.docID
			return e, true
		}
		if !it.advancePage() {
			return xmldoc.Element{}, false
		}
	}
}

// Err returns the first error encountered during iteration.
func (it *Iterator) Err() error { return it.err }

// Mark captures the iterator's position so a later Restore can re-scan from
// here. MPMGJN uses this to rewind over the still-joinable region of the
// descendant list — the repeated scanning the paper charges it with.
type Mark struct {
	pageID pagefile.PageID
	idx    int
	ord    int
}

// Mark returns the position of the next element Next would return.
func (it *Iterator) Mark() Mark {
	return Mark{pageID: it.pageID, idx: it.idx, ord: it.ord}
}

// Restore repositions the iterator at a previously captured Mark. The page
// is re-fetched on the next call to Next, so rescans cost page accesses
// again, as they would on the real storage layout.
func (it *Iterator) Restore(m Mark) error {
	if it.data != nil {
		if err := it.list.pool.Unpin(it.pageID, false); err != nil {
			it.err = err
			return err
		}
		it.data = nil
	}
	it.pageID = m.pageID
	it.idx = m.idx
	it.ord = m.ord
	// Force a re-fetch positioned so that Next returns entry idx+1 … the
	// stored idx is "last returned", matching Next's post-increment.
	it.pendingIdx = m.idx
	it.hasPending = true
	return nil
}

// Close releases the iterator's page pin. Safe to call multiple times.
func (it *Iterator) Close() error {
	if it.data != nil {
		err := it.list.pool.Unpin(it.pageID, false)
		it.data = nil
		if it.err == nil {
			it.err = err
		}
		return err
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}
