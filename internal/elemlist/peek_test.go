package elemlist

import (
	"testing"

	"xrtree/internal/metrics"
	"xrtree/internal/xmldoc"
)

func TestPeekMatchesNext(t *testing.T) {
	pool := newPool(t, 256, 8)
	es := nestedElements(120)
	l, err := Build(pool, es)
	if err != nil {
		t.Fatal(err)
	}
	it := l.Scan(nil)
	defer it.Close()
	for i := 0; ; i++ {
		p, pok := it.Peek()
		n, nok := it.Next()
		if pok != nok || (pok && p != n) {
			t.Fatalf("element %d: Peek (%v,%v) != Next (%v,%v)", i, p, pok, n, nok)
		}
		if !nok {
			break
		}
	}
	if _, ok := it.Peek(); ok {
		t.Error("Peek after end returned true")
	}
}

func TestPeekDoesNotCountScans(t *testing.T) {
	pool := newPool(t, 256, 8)
	l, err := Build(pool, nestedElements(50))
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.Counters{}
	it := l.Scan(st)
	defer it.Close()
	for i := 0; i < 10; i++ {
		it.Peek()
	}
	if st.ElementsScanned != 0 {
		t.Errorf("Peek counted %d scans", st.ElementsScanned)
	}
	it.Next()
	if st.ElementsScanned != 1 {
		t.Errorf("Next counted %d scans, want 1", st.ElementsScanned)
	}
}

func TestMarkRestore(t *testing.T) {
	pool := newPool(t, 256, 8)
	es := nestedElements(100)
	l, err := Build(pool, es)
	if err != nil {
		t.Fatal(err)
	}
	it := l.Scan(nil)
	defer it.Close()
	// Consume 30, mark, consume 40 more, restore, and re-read.
	for i := 0; i < 30; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("unexpected end")
		}
	}
	mark := it.Mark()
	var firstRun []xmldoc.Element
	for i := 0; i < 40; i++ {
		e, ok := it.Next()
		if !ok {
			t.Fatal("unexpected end")
		}
		firstRun = append(firstRun, e)
	}
	if err := it.Restore(mark); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := 0; i < 40; i++ {
		e, ok := it.Next()
		if !ok || e != firstRun[i] {
			t.Fatalf("replay %d: %v,%v want %v", i, e, ok, firstRun[i])
		}
	}
	// Continue to the end: total must be 100.
	rest := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		rest++
	}
	if 30+40+rest != 100 {
		t.Errorf("total = %d, want 100", 30+40+rest)
	}
}

func TestMarkAtStartAndEnd(t *testing.T) {
	pool := newPool(t, 256, 8)
	es := nestedElements(40)
	l, err := Build(pool, es)
	if err != nil {
		t.Fatal(err)
	}
	it := l.Scan(nil)
	defer it.Close()
	start := it.Mark()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	end := it.Mark()
	if err := it.Restore(start); err != nil {
		t.Fatal(err)
	}
	e, ok := it.Next()
	if !ok || e != es[0] {
		t.Fatalf("restore to start: %v,%v", e, ok)
	}
	if err := it.Restore(end); err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Error("restore to end still yields elements")
	}
}
