package elemlist

import (
	"testing"

	"xrtree/internal/bufferpool"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// BenchmarkLeafChainScan measures one full sequential scan of a paged
// element list through a pool smaller than the list, so every iteration
// pays real page replacement — the workload the readahead path targets.
func BenchmarkLeafChainScan(b *testing.B) {
	const elements = 50000
	es := make([]xmldoc.Element, elements)
	for i := range es {
		es[i] = xmldoc.Element{
			DocID: 1,
			Start: uint32(2*i + 1),
			End:   uint32(2*i + 2),
			Level: 1,
			Ref:   uint32(i),
		}
	}
	f := pagefile.NewMem(pagefile.Options{PageSize: pagefile.DefaultPageSize})
	b.Cleanup(func() { f.Close() })
	pool, err := bufferpool.New(f, 100)
	if err != nil {
		b.Fatal(err)
	}
	l, err := Build(pool, es)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c metrics.Counters
		it := l.Scan(&c)
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if err := it.Close(); err != nil {
			b.Fatal(err)
		}
		if n != elements {
			b.Fatalf("scanned %d of %d elements", n, elements)
		}
	}
}
