package xrtree

// Auxiliary studies beyond the §6 join sweeps: the §3.3 stab-list size
// measurement, the §4 amortized update-cost claims (Theorems 1–2), and the
// §5 basic-operation cost claims (Theorems 3–4).

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"

	"xrtree/internal/datagen"
)

// StabStudyRow is one nesting level of the §3.3 stab-list size study.
type StabStudyRow struct {
	MaxNesting    int     // the generator's depth knob
	Elements      int     // indexed elements
	LeafPages     int     // backbone leaf pages
	StabEntries   int     // elements held in stab lists
	StabPages     int     // total stab-list pages
	AvgStabPages  float64 // mean chain length per internal node
	MaxStabPages  int     // longest chain
	StabLeafRatio float64 // stab pages / leaf pages (paper: <10% at depth>10)
}

// StabStudyConfig parameterizes RunStabListStudy.
type StabStudyConfig struct {
	Seed        int64
	Elements    int   // elements per corpus; default 20000
	Depths      []int // nesting depths to sweep; default {2,5,10,15,20}
	PageSize    int
	BufferPages int
	// DisableKeyChoice runs the §3.2 separator ablation variant.
	DisableKeyChoice bool
}

func (c *StabStudyConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Elements == 0 {
		c.Elements = 20000
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{2, 5, 10, 15, 20}
	}
}

// RunStabListStudy reproduces the §3.3 measurement: build XR-trees over
// element sets of increasing nesting depth and report stab-list sizes. The
// paper's finding — a few pages per node on average, total well under the
// leaf-page count — should reproduce at every depth.
func RunStabListStudy(cfg StabStudyConfig) ([]StabStudyRow, error) {
	cfg.defaults()
	var rows []StabStudyRow
	for _, depth := range cfg.Depths {
		doc, err := datagen.Nested(datagen.NestedConfig{
			Seed: cfg.Seed, DocID: 1, Elements: cfg.Elements, MaxDepth: depth, DeepBias: 0.7,
		})
		if err != nil {
			return nil, err
		}
		store, err := NewMemStore(StoreOptions{PageSize: cfg.PageSize, BufferPages: cfg.BufferPages})
		if err != nil {
			return nil, err
		}
		set, err := store.IndexElements(doc.ElementsByTag("item"), IndexOptions{
			SkipList: true, SkipBTree: true, DisableKeyChoice: cfg.DisableKeyChoice,
		})
		if err != nil {
			store.Close()
			return nil, err
		}
		xr, err := set.XRTree()
		if err != nil {
			store.Close()
			return nil, err
		}
		space, err := xr.Space()
		if err != nil {
			store.Close()
			return nil, err
		}
		row := StabStudyRow{
			MaxNesting:   depth,
			Elements:     set.Len(),
			LeafPages:    space.LeafPages,
			StabEntries:  space.StabEntries,
			StabPages:    space.StabPages,
			AvgStabPages: space.AvgStabPages(),
			MaxStabPages: space.MaxStabPages,
		}
		if space.LeafPages > 0 {
			row.StabLeafRatio = float64(space.StabPages) / float64(space.LeafPages)
		}
		rows = append(rows, row)
		if err := store.Close(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatStabStudy renders the §3.3 study as a table.
func FormatStabStudy(w io.Writer, rows []StabStudyRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "max-nesting\telements\tleaf-pages\tstab-entries\tstab-pages\tavg/node\tmax/node\tstab/leaf")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.2f\t%d\t%.1f%%\n",
			r.MaxNesting, r.Elements, r.LeafPages, r.StabEntries, r.StabPages,
			r.AvgStabPages, r.MaxStabPages, 100*r.StabLeafRatio)
	}
	return tw.Flush()
}

// UpdateStudyRow reports amortized update costs at one tree size.
type UpdateStudyRow struct {
	Elements        int
	Height          int
	LogFN           float64 // log_F N with F the observed fanout proxy
	InsertAccesses  float64 // mean page accesses per insert
	DeleteAccesses  float64 // mean page accesses per delete
	InsertWritesPhy float64 // mean physical writes per insert
}

// RunUpdateCostStudy exercises Theorems 1 and 2: the amortized page
// accesses of insert and delete stay O(log_F N) plus a small constant for
// stab-list maintenance.
func RunUpdateCostStudy(seed int64, sizes []int) ([]UpdateStudyRow, error) {
	if len(sizes) == 0 {
		sizes = []int{1000, 5000, 20000, 50000}
	}
	var rows []UpdateStudyRow
	for _, n := range sizes {
		doc, err := datagen.Nested(datagen.NestedConfig{
			Seed: seed, DocID: 1, Elements: n, MaxDepth: 12, DeepBias: 0.6,
		})
		if err != nil {
			return nil, err
		}
		els := doc.ElementsByTag("item")
		store, err := NewMemStore(StoreOptions{BufferPages: 256})
		if err != nil {
			return nil, err
		}
		set, err := store.IndexElements(els, IndexOptions{
			SkipList: true, SkipBTree: true, InsertBuild: false,
		})
		if err != nil {
			store.Close()
			return nil, err
		}
		xr, err := set.XRTree()
		if err != nil {
			store.Close()
			return nil, err
		}

		// Insert cost: re-insert a 10% random sample after deleting it.
		rng := rand.New(rand.NewSource(seed))
		sample := rng.Perm(len(els))
		if len(sample) > len(els)/10+1 {
			sample = sample[:len(els)/10+1]
		}
		for _, i := range sample {
			if err := xr.Delete(els[i].Start); err != nil {
				store.Close()
				return nil, err
			}
		}
		var ins Stats
		store.AttachStats(&ins)
		for _, i := range sample {
			if err := xr.Insert(els[i]); err != nil {
				store.Close()
				return nil, err
			}
		}
		store.AttachStats(nil)

		var del Stats
		store.AttachStats(&del)
		for _, i := range sample {
			if err := xr.Delete(els[i].Start); err != nil {
				store.Close()
				return nil, err
			}
		}
		store.AttachStats(nil)
		// Restore for cleanliness (not measured).
		for _, i := range sample {
			if err := xr.Insert(els[i]); err != nil {
				store.Close()
				return nil, err
			}
		}

		ops := float64(len(sample))
		rows = append(rows, UpdateStudyRow{
			Elements:       xr.Len(),
			Height:         xr.Height(),
			LogFN:          math.Log(float64(xr.Len())) / math.Log(100),
			InsertAccesses: float64(ins.PageAccesses()) / ops,
			DeleteAccesses: float64(del.PageAccesses()) / ops,
		})
		if err := store.Close(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatUpdateStudy renders the §4 update-cost study.
func FormatUpdateStudy(w io.Writer, rows []UpdateStudyRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "elements\theight\tinsert pg/op\tdelete pg/op")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\n", r.Elements, r.Height, r.InsertAccesses, r.DeleteAccesses)
	}
	return tw.Flush()
}

// OpsStudyRow reports the basic-operation costs of §5 at one tree size.
type OpsStudyRow struct {
	Elements      int
	Height        int
	AncProbes     int
	AncAvgPages   float64 // mean page accesses per FindAncestors
	AncAvgResults float64
	DescProbes    int
	DescAvgPages  float64 // mean page accesses per FindDescendants
	DescAvgResult float64
}

// RunBasicOpsStudy exercises Theorems 3 and 4: FindAncestors costs
// O(log_F N + R) and FindDescendants O(log_F N + R/B) page accesses.
func RunBasicOpsStudy(seed int64, sizes []int, probes int) ([]OpsStudyRow, error) {
	if len(sizes) == 0 {
		sizes = []int{1000, 10000, 50000}
	}
	if probes <= 0 {
		probes = 500
	}
	var rows []OpsStudyRow
	for _, n := range sizes {
		doc, err := datagen.Nested(datagen.NestedConfig{
			Seed: seed, DocID: 1, Elements: n, MaxDepth: 14, DeepBias: 0.6,
		})
		if err != nil {
			return nil, err
		}
		els := doc.ElementsByTag("item")
		store, err := NewMemStore(StoreOptions{BufferPages: 256})
		if err != nil {
			return nil, err
		}
		set, err := store.IndexElements(els, IndexOptions{SkipList: true, SkipBTree: true})
		if err != nil {
			store.Close()
			return nil, err
		}
		xr, _ := set.XRTree()
		rng := rand.New(rand.NewSource(seed))
		maxPos := els[len(els)-1].End

		row := OpsStudyRow{Elements: xr.Len(), Height: xr.Height(), AncProbes: probes, DescProbes: probes}
		var ancPages, ancResults int64
		for i := 0; i < probes; i++ {
			var st Stats
			sd := uint32(rng.Intn(int(maxPos)) + 1)
			anc, err := xr.FindAncestors(sd, 0, &st)
			if err != nil {
				store.Close()
				return nil, err
			}
			ancPages += st.IndexNodeReads + st.LeafReads + st.StabPageReads
			ancResults += int64(len(anc))
		}
		row.AncAvgPages = float64(ancPages) / float64(probes)
		row.AncAvgResults = float64(ancResults) / float64(probes)

		var descPages, descResults int64
		for i := 0; i < probes; i++ {
			var st Stats
			e := els[rng.Intn(len(els))]
			des, err := xr.FindDescendants(e.Start, e.End, &st)
			if err != nil {
				store.Close()
				return nil, err
			}
			descPages += st.IndexNodeReads + st.LeafReads + st.StabPageReads
			descResults += int64(len(des))
		}
		row.DescAvgPages = float64(descPages) / float64(probes)
		row.DescAvgResult = float64(descResults) / float64(probes)
		rows = append(rows, row)
		if err := store.Close(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatOpsStudy renders the §5 basic-operations study.
func FormatOpsStudy(w io.Writer, rows []OpsStudyRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "elements\theight\tFindAnc pg/op\tavg R\tFindDesc pg/op\tavg R")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Elements, r.Height, r.AncAvgPages, r.AncAvgResults, r.DescAvgPages, r.DescAvgResult)
	}
	return tw.Flush()
}
