package xrtree

// The experiment harness: one entry point per table/figure of the paper's
// §6 evaluation (plus the §3.3, §4 and §5 measurements), shared by
// cmd/xrbench and the root bench_test.go. Each sweep point builds the
// workload of the corresponding experiment, indexes both element sets in a
// fresh in-memory store, cold-starts the buffer pool, and runs every
// algorithm, reporting elements scanned (the metric of Tables 2–3), buffer
// misses and derived time (the Figure 8 proxy), and wall-clock time.

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"xrtree/internal/datagen"
	"xrtree/internal/workload"
)

// WorkloadStats reports the achieved selectivities of one sweep point.
type WorkloadStats = workload.Stats

// SelectivitySweep is the x-axis of the §6 experiments (90% … 1%).
var SelectivitySweep = workload.SelectivitySweep

// ExperimentConfig parameterizes the sweeps.
type ExperimentConfig struct {
	// Seed makes corpora and workloads deterministic. Default 1.
	Seed int64
	// Scale multiplies the corpus sizes; 1.0 is the harness default
	// (laptop-friendly; the paper used ~90 MB per corpus).
	Scale float64
	// PageSize and BufferPages configure the store (defaults 4096 / 100).
	PageSize    int
	BufferPages int
	// Sweep overrides the selectivity points (default SelectivitySweep).
	Sweep []float64
	// Algorithms overrides the algorithm list (default Algorithms).
	Algorithms []Algorithm
	// Model converts misses/scans to derived time (default DefaultCostModel).
	Model CostModel
	// Mode selects the join relationship (default AncestorDescendant).
	Mode Mode
	// Observe attaches a fresh event Collector to every measured join and
	// fills the observability fields of each AlgResult (phase breakdown,
	// event histograms, skipping effectiveness).
	Observe bool
	// PoolPolicy selects the buffer replacement policy of every measured
	// store ("" / PoolLRU is the paper-faithful default; Pool2Q is the
	// scan-resistant variant).
	PoolPolicy PoolPolicy
	// Prefetch enables the pool's asynchronous readahead workers.
	Prefetch bool
}

func (c *ExperimentConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if len(c.Sweep) == 0 {
		c.Sweep = SelectivitySweep
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = Algorithms
	}
	if c.Model == (CostModel{}) {
		c.Model = DefaultCostModel
	}
}

// AlgResult is one algorithm's measured cost at one sweep point. The
// observability fields are populated only when ExperimentConfig.Observe is
// set.
type AlgResult struct {
	Alg     Algorithm
	Stats   Stats
	Derived time.Duration // Model-derived time (the Figure 8 proxy)

	// Phases is the per-phase breakdown of the traced join (nil without
	// Observe).
	Phases *JoinPhases
	// Events is the raw per-event trace snapshot (nil without Observe).
	Events *TraceSnapshot
	// SkipEffectiveness is 1 − scanned/(|A|+|D|) (0 without Observe).
	SkipEffectiveness float64
}

// SweepPoint is one x-axis point of a sweep.
type SweepPoint struct {
	Label    string
	Target   float64
	Workload WorkloadStats
	Results  []AlgResult
}

// SweepResult is one corpus's full sweep.
type SweepResult struct {
	Corpus string
	Points []SweepPoint
}

// sweepKind selects which §6 workload builder a sweep uses.
type sweepKind int

const (
	sweepAncestor sweepKind = iota
	sweepDescendant
	sweepBoth
)

// RunAncestorSweep reproduces Table 2 and Figure 8(a)(b): 99% of
// descendants join while the fraction of joining ancestors varies.
func RunAncestorSweep(cfg ExperimentConfig) ([]SweepResult, error) {
	return runSweep(cfg, sweepAncestor)
}

// RunDescendantSweep reproduces Table 3 and Figure 8(c)(d): 99% of
// ancestors join while the fraction of joining descendants varies.
func RunDescendantSweep(cfg ExperimentConfig) ([]SweepResult, error) {
	return runSweep(cfg, sweepDescendant)
}

// RunBothSweep reproduces Figure 8(e)(f): both selectivities vary together
// with the set sizes held constant by dummy padding.
func RunBothSweep(cfg ExperimentConfig) ([]SweepResult, error) {
	return runSweep(cfg, sweepBoth)
}

func runSweep(cfg ExperimentConfig, kind sweepKind) ([]SweepResult, error) {
	cfg.defaults()
	corpora, err := datagen.PaperCorpora(cfg.Seed, cfg.Scale)
	if err != nil {
		return nil, err
	}
	var out []SweepResult
	for _, corpus := range corpora {
		baseA := corpus.Doc.ElementsByTag(corpus.AncestorTag)
		baseD := corpus.Doc.ElementsByTag(corpus.DescendantTag)
		res := SweepResult{Corpus: corpus.Name}
		for _, pct := range cfg.Sweep {
			var sets workload.Sets
			switch kind {
			case sweepAncestor:
				sets = workload.VaryAncestorSelectivity(baseA, baseD, pct, 0.99, cfg.Seed)
			case sweepDescendant:
				sets = workload.VaryDescendantSelectivity(baseA, baseD, pct, 0.99, cfg.Seed)
			case sweepBoth:
				sets = workload.VaryBothSelectivity(baseA, baseD, pct, cfg.Seed)
			}
			point, err := runPoint(cfg, pct, sets)
			if err != nil {
				return nil, fmt.Errorf("%s at %.0f%%: %w", corpus.Name, pct*100, err)
			}
			res.Points = append(res.Points, point)
		}
		out = append(out, res)
	}
	return out, nil
}

// runPoint measures every algorithm on one workload in a fresh store.
func runPoint(cfg ExperimentConfig, pct float64, sets workload.Sets) (SweepPoint, error) {
	point := SweepPoint{
		Label:    fmt.Sprintf("%d%%", int(pct*100+0.5)),
		Target:   pct,
		Workload: workload.Measure(sets),
	}
	store, err := NewMemStore(StoreOptions{
		PageSize:    cfg.PageSize,
		BufferPages: cfg.BufferPages,
		PoolPolicy:  cfg.PoolPolicy,
		Prefetch:    cfg.Prefetch,
	})
	if err != nil {
		return point, err
	}
	defer store.Close()
	a, err := store.IndexElements(sets.A, IndexOptions{})
	if err != nil {
		return point, err
	}
	d, err := store.IndexElements(sets.D, IndexOptions{})
	if err != nil {
		return point, err
	}
	for _, alg := range cfg.Algorithms {
		if err := store.DropCache(); err != nil {
			return point, err
		}
		var st Stats
		var col *Collector
		if cfg.Observe {
			col = NewCollector()
			st.Tracer = col
		}
		store.AttachStats(&st)
		err := Join(alg, cfg.Mode, a, d, nil, &st)
		store.AttachStats(nil)
		if err != nil {
			return point, fmt.Errorf("%s: %w", alg, err)
		}
		r := AlgResult{
			Alg:     alg,
			Stats:   st,
			Derived: cfg.Model.DerivedTime(&st),
		}
		if col != nil {
			// Physical I/O is counted at the file layer; recover the
			// per-run counts from the traced page events.
			r.Stats.PhysicalReads = col.Count(EvPageRead)
			r.Stats.PhysicalWrites = col.Count(EvPageWrite)
			ph := col.JoinPhases()
			ev := col.Snapshot()
			r.Phases = &ph
			r.Events = &ev
			r.SkipEffectiveness = SkippingEffectiveness(
				st.ElementsScanned, int64(a.Len()+d.Len()))
		}
		point.Results = append(point.Results, r)
	}
	return point, nil
}

// FormatScannedTable renders a sweep the way Tables 2 and 3 do: one row per
// selectivity, one column per algorithm, values in thousands of elements
// scanned.
func FormatScannedTable(w io.Writer, res SweepResult, axis string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\t", axis)
	for _, r := range res.Points[0].Results {
		fmt.Fprintf(tw, "%s\t", r.Alg)
	}
	fmt.Fprintf(tw, "|A|\t|D|\tpairs\n")
	for _, p := range res.Points {
		fmt.Fprintf(tw, "%s\t", p.Label)
		for _, r := range p.Results {
			fmt.Fprintf(tw, "%.1fk\t", float64(r.Stats.ElementsScanned)/1000)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\n", p.Workload.NumA, p.Workload.NumD, p.Workload.Pairs)
	}
	return tw.Flush()
}

// WriteCSV emits a sweep as one CSV row per (selectivity, algorithm) cell —
// the plotting-friendly form of the tables and figures.
func WriteCSV(w io.Writer, res SweepResult, axis string) error {
	if _, err := fmt.Fprintf(w, "corpus,%s,algorithm,scanned,misses,derived_ms,wall_ms,numA,numD,pairs\n", axis); err != nil {
		return err
	}
	for _, p := range res.Points {
		for _, r := range p.Results {
			_, err := fmt.Fprintf(w, "%q,%s,%s,%d,%d,%.3f,%.3f,%d,%d,%d\n",
				res.Corpus, p.Label, r.Alg,
				r.Stats.ElementsScanned, r.Stats.BufferMisses,
				float64(r.Derived.Microseconds())/1000,
				float64(r.Stats.Elapsed.Microseconds())/1000,
				p.Workload.NumA, p.Workload.NumD, p.Workload.Pairs)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// FormatTimeTable renders a sweep the way Figure 8 does: derived time (from
// page misses) plus measured wall-clock per algorithm.
func FormatTimeTable(w io.Writer, res SweepResult, axis string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\t", axis)
	for _, r := range res.Points[0].Results {
		fmt.Fprintf(tw, "%s(derived)\t%s(misses)\t%s(wall)\t", r.Alg, r.Alg, r.Alg)
	}
	fmt.Fprintln(tw)
	for _, p := range res.Points {
		fmt.Fprintf(tw, "%s\t", p.Label)
		for _, r := range p.Results {
			fmt.Fprintf(tw, "%v\t%d\t%v\t",
				r.Derived.Round(time.Millisecond), r.Stats.BufferMisses,
				r.Stats.Elapsed.Round(100*time.Microsecond))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
