package xrtree_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"xrtree"
)

func TestCatalogPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.db")
	store, err := xrtree.CreateStore(path, xrtree.StoreOptions{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xrtree.ParseXML(strings.NewReader(queryXML), 1)
	if err != nil {
		t.Fatal(err)
	}
	emps, err := store.IndexElements(doc.ElementsByTag("employee"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	names, err := store.IndexElements(doc.ElementsByTag("name"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSet("employee", emps); err != nil {
		t.Fatalf("SaveSet: %v", err)
	}
	if err := store.SaveSet("name", names); err != nil {
		t.Fatalf("SaveSet: %v", err)
	}
	var wantPairs []xrtree.Pair
	wantPairs, err = xrtree.JoinPairs(xrtree.AlgXRStack, xrtree.AncestorDescendant, emps, names, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and rerun the join from the catalog alone.
	store2, err := xrtree.OpenStore(path, xrtree.StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer store2.Close()
	setNames, err := store2.SetNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(setNames) != 2 {
		t.Fatalf("SetNames = %v", setNames)
	}
	emps2, err := store2.OpenSet("employee")
	if err != nil {
		t.Fatalf("OpenSet(employee): %v", err)
	}
	names2, err := store2.OpenSet("name")
	if err != nil {
		t.Fatalf("OpenSet(name): %v", err)
	}
	if emps2.Len() != emps.Len() || names2.Len() != names.Len() {
		t.Fatalf("reopened sizes: %d, %d", emps2.Len(), names2.Len())
	}
	for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgBPlus, xrtree.AlgXRStack} {
		got, err := xrtree.JoinPairs(alg, xrtree.AncestorDescendant, emps2, names2, nil)
		if err != nil {
			t.Fatalf("%s after reopen: %v", alg, err)
		}
		if len(got) != len(wantPairs) {
			t.Errorf("%s after reopen: %d pairs, want %d", alg, len(got), len(wantPairs))
		}
	}
	// The XR-tree survives with invariants intact.
	xr, err := emps2.XRTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := xr.CheckInvariants(); err != nil {
		t.Errorf("reopened XR-tree invariants: %v", err)
	}
}

func TestCatalogReplaceAndErrors(t *testing.T) {
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	doc, _ := xrtree.ParseXML(strings.NewReader(queryXML), 1)
	set, err := store.IndexElements(doc.ElementsByTag("name"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSet("s", set); err != nil {
		t.Fatal(err)
	}
	// Re-saving under the same name replaces, not duplicates.
	if err := store.SaveSet("s", set); err != nil {
		t.Fatal(err)
	}
	names, err := store.SetNames()
	if err != nil || len(names) != 1 {
		t.Fatalf("SetNames = %v, %v", names, err)
	}
	if _, err := store.OpenSet("missing"); !errors.Is(err, xrtree.ErrUnknownSet) {
		t.Errorf("OpenSet(missing) err = %v", err)
	}
	if err := store.SaveSet("", set); err == nil {
		t.Error("empty name accepted")
	}
}

func TestCatalogManyEntriesSpanPages(t *testing.T) {
	// Enough entries to overflow one 1 KiB catalog page.
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	doc, _ := xrtree.ParseXML(strings.NewReader(queryXML), 1)
	set, err := store.IndexElements(doc.ElementsByTag("name"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 80
	for i := 0; i < n; i++ {
		if err := store.SaveSet(fmt.Sprintf("set-%03d-with-a-longish-name", i), set); err != nil {
			t.Fatalf("SaveSet %d: %v", i, err)
		}
	}
	names, err := store.SetNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != n {
		t.Fatalf("SetNames = %d entries, want %d", len(names), n)
	}
	if _, err := store.OpenSet("set-059-with-a-longish-name"); err != nil {
		t.Errorf("OpenSet across pages: %v", err)
	}
	// Shrink the catalog back below one page; trailing pages must clear.
	if err := store.SaveSet("only", set); err != nil {
		t.Fatal(err)
	}
	_ = names
}

func TestOpenSetWithPartialPaths(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.db")
	store, err := xrtree.CreateStore(path, xrtree.StoreOptions{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xrtree.ParseXML(strings.NewReader(queryXML), 1)
	set, err := store.IndexElements(doc.ElementsByTag("employee"), xrtree.IndexOptions{
		SkipList: true, SkipBTree: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSet("xr-only", set); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := xrtree.OpenStore(path, xrtree.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	re, err := store2.OpenSet("xr-only")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.FindAncestors(5, nil); err != nil {
		t.Errorf("FindAncestors on reopened xr-only set: %v", err)
	}
	// The missing access paths still error cleanly.
	other, err := store2.OpenSet("xr-only")
	if err != nil {
		t.Fatal(err)
	}
	if err := xrtree.Join(xrtree.AlgNoIndex, xrtree.AncestorDescendant, other, other, nil, nil); !errors.Is(err, xrtree.ErrNoAccessPath) {
		t.Errorf("NoIndex join without lists err = %v", err)
	}
}
