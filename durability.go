package xrtree

// Durability and crash recovery for file-backed stores (DESIGN.md
// "Durability & recovery"). With StoreOptions.WAL set, every XR-tree and
// B+-tree Insert/Delete runs as a logged transaction with group commit,
// and OpenStore redoes the log before serving: a crash at any instant
// loses at most the transactions whose commit records never reached disk,
// never a fraction of one. Bulk builds stay unlogged; their durability
// point is SaveSet, which flushes, fsyncs, and checkpoints.

import (
	"errors"
	"fmt"

	"xrtree/internal/pagefile"
	"xrtree/internal/wal"
)

// WALFS is the filesystem the write-ahead log writes through. The default
// (nil) is the OS; the crash-injection harness substitutes an
// implementation that fails after a chosen number of bytes.
type WALFS = wal.FS

// WALStats is a snapshot of the write-ahead log's counters. Fsyncs <
// Commits under concurrent writers is the observable signature of group
// commit.
type WALStats = wal.Stats

// RecoveryReport describes what the recovery pass of a WAL-enabled
// OpenStore found and did.
type RecoveryReport = wal.Report

// ErrRecoveryNeeded is returned by OpenStore when the store needs crash
// recovery it was not asked to run: the page file has a torn tail, or a
// write-ahead log exists beside it, and StoreOptions.WAL is off. Reopen
// with WAL enabled to recover.
var ErrRecoveryNeeded = errors.New("xrtree: store needs crash recovery (reopen with StoreOptions.WAL)")

// walDir returns the log directory for the store at path.
func walDir(path string, opts StoreOptions) string {
	if opts.WALDir != "" {
		return opts.WALDir
	}
	return path + ".wal"
}

func (opts StoreOptions) walOptions() wal.Options {
	return wal.Options{FS: opts.WALFS, SegmentBytes: opts.WALSegmentBytes}
}

// hasWAL reports whether a log directory with segments exists for path.
func hasWAL(path string, opts StoreOptions) bool {
	ok, err := wal.HasSegments(opts.WALFS, walDir(path, opts))
	return err == nil && ok
}

// startWAL begins a fresh log incarnation at LSN next and attaches it to
// the pool. Pre-existing segments have been replayed (or the store is
// brand new) and are deleted.
func (s *Store) startWAL(path string, opts StoreOptions, next uint64) error {
	l, err := wal.Start(walDir(path, opts), s.file.PageSize(), next, opts.walOptions())
	if err != nil {
		return err
	}
	s.wal = l
	s.pool.SetWAL(l, opts.WALCheckpointBytes)
	return nil
}

// openStoreWAL is OpenStore for a WAL-enabled store: repair the page
// file's physical tail, redo every committed transaction from the log,
// and start a fresh log incarnation where the old one ended.
func openStoreWAL(path string, opts StoreOptions) (*Store, error) {
	file, err := pagefile.OpenRepair(path)
	if err != nil {
		return nil, err
	}
	rep, err := wal.Replay(opts.WALFS, walDir(path, opts), file.PageSize(), file)
	if err != nil {
		file.Abandon()
		return nil, fmt.Errorf("xrtree: recovery: %w", err)
	}
	if rep.Replayed() {
		// The shutdown was not provably clean: free-list links are written
		// outside the log, so the list may thread through pages whose
		// writes never became durable. Rebuild it empty — a bounded page
		// leak instead of a corrupt allocator.
		if err := file.ResetFreeList(); err != nil {
			file.Abandon()
			return nil, err
		}
	}
	// Make the redone images durable before Start deletes the segments
	// that carry them.
	if err := file.Sync(); err != nil {
		file.Abandon()
		return nil, err
	}
	s, err := newStore(file, opts)
	if err != nil {
		return nil, err
	}
	if err := s.startWAL(path, opts, rep.NextLSN); err != nil {
		s.Close()
		return nil, fmt.Errorf("xrtree: start log: %w", err)
	}
	s.recovery = &rep
	return s, nil
}

// Abandon drops the store without flushing anything: dirty buffered pages
// and the log's unsynced tail are simply lost, as in a crash. The crash
// harness uses it where a real deployment would lose power.
func (s *Store) Abandon() {
	s.pool.Close()
	if s.wal != nil {
		s.wal.Abandon()
	}
	s.file.Abandon()
}

// Recovery returns the report of the recovery pass OpenStore ran, or nil
// for stores that did not open through one (created fresh, or no WAL).
func (s *Store) Recovery() *RecoveryReport { return s.recovery }

// WALStats returns the write-ahead log's counters; ok is false when the
// store runs without a log.
func (s *Store) WALStats() (st WALStats, ok bool) {
	if s.wal == nil {
		return WALStats{}, false
	}
	return s.wal.Stats(), true
}

// Checkpoint forces a checkpoint: flush the pool, fsync the page file,
// and prune log segments the page file no longer needs. It waits for
// in-flight commits and bulk builds to drain. No-op without a WAL.
func (s *Store) Checkpoint() error { return s.pool.CheckpointWait() }

// syncDurable is SaveSet's durability point. With a log attached it must
// be a full checkpoint: the checkpoint record is the barrier that stops
// older logged images from replaying over pages the just-saved bulk
// build reused.
func (s *Store) syncDurable() error {
	if s.pool.WAL() != nil {
		return s.pool.CheckpointWait()
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	return s.file.Sync()
}
