module xrtree

go 1.22
